"""Synthesizing hybrid dependency relations.

Unlike static and dynamic atomicity, hybrid atomicity has no unique
minimal dependency relation and no closed-form characterization — the
paper's FlagSet shows the minimal relations can be incomparable
alternatives.  A practical system still needs *some* valid hybrid
relation for each type (the hybrid concurrency-control scheme locks by
it, and quorum assignments must satisfy it).  Two routes:

* **Theorem 4 fallback** — the unique minimal static relation is always
  a valid hybrid relation.  Zero search cost, but it can over-constrain
  (for PROM it forces the two extra Read/Write pairs hybrid atomicity
  does not need).
* **Synthesis** (:func:`synthesize_hybrid_relation`) — compute the
  required core (pairs in every valid relation) on a bounded arena,
  then repair it: while a Definition-2 counterexample exists, add a
  pair that covers it, preferring pairs already forced by the static
  relation.  The result is a valid (bounded-verified) relation, usually
  strictly inside the static one.

Synthesis is greedy, so it lands on *one* of the minimal alternatives
when several exist (the FlagSet situation) — which is exactly what a
deployment does too: pick one valid constraint set and assign quorums
to it.
"""

from __future__ import annotations

from repro.dependency.relation import DependencyRelation, GroundPair
from repro.dependency.static_dep import minimal_static_dependency
from repro.dependency.verify import (
    Counterexample,
    VerificationArena,
    find_counterexample,
    required_pairs,
)
from repro.errors import DependencyError
from repro.histories.behavioral import Op


def _covering_pairs(counterexample: Counterexample) -> list[GroundPair]:
    """Pairs whose addition would force the missing evidence into views.

    Any Definition-2 violation means the subhistory ``G`` omitted some
    operation entry of ``H`` that mattered; relating the appended
    invocation to each omitted event yields candidate repairs.
    """
    appended_inv = counterexample.appended.event.inv
    candidates: list[GroundPair] = []
    kept = counterexample.kept_ops
    for index, entry in enumerate(counterexample.history.entries):
        if isinstance(entry, Op) and index not in kept:
            candidates.append((appended_inv, entry.event))
    return candidates


def synthesize_hybrid_relation(
    arena: VerificationArena,
    *,
    prefer: DependencyRelation | None = None,
    max_repairs: int = 100,
) -> DependencyRelation:
    """Produce a bounded-verified hybrid dependency relation.

    ``arena`` must be built over ``HybridAtomicity``.  ``prefer`` biases
    repair choices toward its pairs (default: the type's minimal static
    relation, so the synthesized relation tends to stay inside the
    Theorem 4 fallback).  Raises
    :class:`~repro.errors.DependencyError` if no repair converges within
    ``max_repairs`` additions (never observed; the total relation is
    always valid, so termination only needs the repair loop to make
    progress).
    """
    if prefer is None:
        prefer = minimal_static_dependency(
            arena.property.datatype, 3, arena.property.oracle
        )
    relation = required_pairs(arena)
    for _round in range(max_repairs):
        counterexample = find_counterexample(relation, arena)
        if counterexample is None:
            return relation
        candidates = _covering_pairs(counterexample)
        if not candidates:
            raise DependencyError(
                "counterexample with no omitted events — cannot repair:\n"
                + counterexample.explain()
            )
        preferred = [pair for pair in candidates if pair in prefer.pairs]
        chosen = sorted(
            preferred or candidates, key=lambda p: (str(p[0]), str(p[1]))
        )[0]
        relation = relation.with_pair(chosen)
    raise DependencyError(f"synthesis did not converge in {max_repairs} repairs")
