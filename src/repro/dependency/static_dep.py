"""The unique minimal static dependency relation (Theorem 6).

Theorem 6 characterizes the minimal static dependency relation ``≥s``
directly in terms of the serial specification: ``inv ≥s e`` iff there
exist a response ``res`` and serial histories ``h1, h2, h3`` with
``h1·h2·h3`` legal such that either

1. ``h1·[inv;res]·h2·h3`` and ``h1·h2·e·h3`` are legal but
   ``h1·[inv;res]·h2·e·h3`` is illegal — a later ``e`` invalidates the
   response chosen for ``inv``; or
2. ``h1·e·h2·h3`` and ``h1·h2·[inv;res]·h3`` are legal but
   ``h1·e·h2·[inv;res]·h3`` is illegal — a missing earlier ``e`` makes
   the chosen response wrong.

:func:`minimal_static_dependency` evaluates this characterization
exhaustively over all legal serial histories with at most ``max_events``
events, yielding the ground relation.  The search is monotone in the
bound: raising ``max_events`` can only add pairs.
"""

from __future__ import annotations

from repro.dependency.relation import DependencyRelation, GroundPair
from repro.histories.events import Event, SerialHistory
from repro.spec.datatype import SerialDataType
from repro.spec.enumerate import event_alphabet, legal_serial_histories
from repro.spec.legality import LegalityOracle


def minimal_static_dependency(
    datatype: SerialDataType,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
    events: tuple[Event, ...] | None = None,
) -> DependencyRelation:
    """Compute ``≥s`` by the Theorem 6 search, bounded at ``max_events``.

    ``max_events`` bounds the length of ``h1·h2·h3``; ``events``
    optionally fixes the event alphabet used for both the inserted
    ``[inv;res]`` events and the interfering ``e`` events (default: the
    alphabet of legal histories of ``max_events + 2`` events, so that
    insertions cannot escape the alphabet).
    """
    oracle = oracle or LegalityOracle(datatype)
    if events is None:
        events = event_alphabet(datatype, max_events + 2, oracle)
    pairs: set[GroundPair] = set()

    def record_if_conflicting(
        h1: SerialHistory, h2: SerialHistory, h3: SerialHistory
    ) -> None:
        for inv_event in events:
            for interfering in events:
                pair = (inv_event.inv, interfering)
                if pair in pairs:
                    continue
                if _condition_one(
                    oracle, h1, h2, h3, inv_event, interfering
                ) or _condition_two(oracle, h1, h2, h3, inv_event, interfering):
                    pairs.add(pair)

    for history in legal_serial_histories(datatype, max_events, oracle):
        length = len(history)
        for i in range(length + 1):
            for j in range(i, length + 1):
                record_if_conflicting(history[:i], history[i:j], history[j:])
    return DependencyRelation(pairs)


def _condition_one(
    oracle: LegalityOracle,
    h1: SerialHistory,
    h2: SerialHistory,
    h3: SerialHistory,
    inv_event: Event,
    interfering: Event,
) -> bool:
    """A later ``e`` invalidates the response: clause 1 of Theorem 6."""
    return (
        oracle.is_legal(h1 + (inv_event,) + h2 + h3)
        and oracle.is_legal(h1 + h2 + (interfering,) + h3)
        and not oracle.is_legal(h1 + (inv_event,) + h2 + (interfering,) + h3)
    )


def _condition_two(
    oracle: LegalityOracle,
    h1: SerialHistory,
    h2: SerialHistory,
    h3: SerialHistory,
    inv_event: Event,
    interfering: Event,
) -> bool:
    """A missing earlier ``e`` makes the response wrong: clause 2 of Theorem 6."""
    return (
        oracle.is_legal(h1 + (interfering,) + h2 + h3)
        and oracle.is_legal(h1 + h2 + (inv_event,) + h3)
        and not oracle.is_legal(h1 + (interfering,) + h2 + (inv_event,) + h3)
    )
