"""Atomic dependency relations (paper, Definitions 1 and 2).

A *dependency relation* relates invocations to events: ``inv ≥ e`` means
that any view used to execute ``inv`` must include every earlier
(non-aborted) ``e`` event — operationally, that each initial quorum for
``inv`` must intersect each final quorum for ``e``.  A replicated object
satisfies its behavioral specification if and only if its quorum
intersection relation is an *atomic* dependency relation for that
specification, so the constraints on replicated availability are exactly
the minimal atomic dependency relations this subpackage computes:

* :mod:`repro.dependency.static_dep` — the unique minimal static
  dependency relation, by the Theorem 6 characterization;
* :mod:`repro.dependency.dynamic_dep` — the unique minimal dynamic
  dependency relation, by the Theorem 10 commutativity characterization;
* :mod:`repro.dependency.verify` — bounded-model-checking verification of
  Definition 2 for arbitrary relations and properties (the only general
  route for hybrid atomicity, whose minimal relations are not unique);
* :mod:`repro.dependency.known` — the relations the paper derives by
  hand, cross-checked against the searches by the test suite.
"""

from repro.dependency.relation import DependencyRelation, SchemaPair
from repro.dependency.closure import closed_subhistories, is_closed_subhistory
from repro.dependency.verify import (
    Counterexample,
    VerificationBounds,
    find_counterexample,
    is_dependency_relation,
    required_pairs,
    is_minimal_relation,
)
from repro.dependency.static_dep import minimal_static_dependency
from repro.dependency.dynamic_dep import commute, minimal_dynamic_dependency
from repro.dependency.hybrid_dep import synthesize_hybrid_relation

__all__ = [
    "DependencyRelation",
    "SchemaPair",
    "closed_subhistories",
    "is_closed_subhistory",
    "Counterexample",
    "VerificationBounds",
    "find_counterexample",
    "is_dependency_relation",
    "required_pairs",
    "is_minimal_relation",
    "minimal_static_dependency",
    "minimal_dynamic_dependency",
    "commute",
    "synthesize_hybrid_relation",
]
