"""Bounded verification of atomic dependency relations (Definition 2).

A relation ``≥`` is an *atomic dependency relation* for a behavioral
specification when, for every legal history ``H``, every closed
subhistory ``G`` containing the events ``H`` relates to an invocation
``inv``, and every response ``res``: if ``G·[inv;res A]`` is legal then
``H·[inv;res A]`` is legal.  Operationally: a front-end that assembles a
*view* (a closed subhistory guaranteed to contain everything ``inv``
depends on, by quorum intersection) and finds a response legal for the
view may safely return it.

:func:`find_counterexample` refutes candidate relations by exhaustive
search up to bounds; :func:`is_dependency_relation` is its boolean form.
The search is *sound* (any counterexample it returns is genuine) and
*complete up to the bounds*: every counterexample in the paper fits well
inside the default bounds, and benches report the bounds used.

Because every superset of an atomic dependency relation is itself an
atomic dependency relation (more required intersections mean richer
views), the total relation is always valid, and the set of pairs present
in *every* valid relation — :func:`required_pairs` — can be computed by
deleting one pair at a time from the total relation.  For static and
dynamic atomicity that set *is* the unique minimal relation (Theorems 6
and 10); for hybrid atomicity it may be strictly smaller than every
valid relation, which is exactly the paper's FlagSet phenomenon.

To make repeated verification cheap (minimality checks run one search
per pair), a :class:`VerificationArena` precomputes the bounded history
universe and all candidate appended events once; individual relation
checks then reuse it, and all specification-membership queries hit the
property's memoization cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.atomicity.explore import ExplorationBounds, behavioral_histories
from repro.atomicity.properties import LocalAtomicityProperty
from repro.dependency.closure import (
    closed_subhistories,
    dependent_op_indices,
)
from repro.dependency.relation import DependencyRelation, GroundPair
from repro.histories.behavioral import Action, BehavioralHistory, Op
from repro.histories.events import Event, Invocation


@dataclass(frozen=True)
class VerificationBounds:
    """Bounds for Definition 2 verification.

    ``exploration`` bounds the history universe; ``append_events``
    optionally restricts the events considered for the appended
    operation (default: the exploration alphabet).
    """

    exploration: ExplorationBounds = field(default_factory=ExplorationBounds)
    append_events: tuple[Event, ...] | None = None


@dataclass
class Counterexample:
    """A witness that a relation is not an atomic dependency relation.

    ``history`` is legal, ``subhistory`` is a closed subhistory
    containing everything ``appended.event.inv`` depends on, the
    subhistory extended by ``appended`` is legal — yet the history
    extended by ``appended`` is not.
    """

    history: BehavioralHistory
    subhistory: BehavioralHistory
    kept_ops: frozenset[int]
    appended: Op

    def explain(self) -> str:
        return (
            "counterexample to Definition 2:\n"
            f"H =\n{_indent(str(self.history))}\n"
            f"G (closed subhistory) =\n{_indent(str(self.subhistory))}\n"
            f"G·[{self.appended}] is in the specification "
            f"but H·[{self.appended}] is not"
        )


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


class VerificationArena:
    """The shared, precomputed universe for Definition 2 checks.

    Stores every bounded history ``H`` admitted by the property together
    with every candidate appended operation ``[e A]`` and whether
    ``H·[e A]`` is admitted.  Only appends that are *rejected* matter to
    the search (admitted appends satisfy Definition 2 vacuously), so
    those are kept per history.
    """

    def __init__(self, prop: LocalAtomicityProperty, bounds: VerificationBounds):
        self.property = prop
        self.bounds = bounds
        events = bounds.append_events
        if events is None:
            events = bounds.exploration.resolve_events(prop)
        self.append_events: tuple[Event, ...] = tuple(events)
        self.invocations: tuple[Invocation, ...] = tuple(
            sorted({ev.inv for ev in self.append_events}, key=str)
        )
        #: (history, rejected appends) pairs; each append is an Op entry
        #: such that history.append(op) is well-formed but not admitted.
        self.entries: list[tuple[BehavioralHistory, tuple[Op, ...]]] = []
        self._build()

    def _build(self) -> None:
        prop = self.property
        for history in behavioral_histories(prop, self.bounds.exploration):
            rejected: list[Op] = []
            for action in sorted(history.active):
                for event in self.append_events:
                    op = Op(event, action)
                    if not prop.admits(history.append(op)):
                        rejected.append(op)
            if rejected:
                self.entries.append((history, tuple(rejected)))

    def universe_pairs(self) -> DependencyRelation:
        """The total relation over this arena's alphabet."""
        return DependencyRelation.total(self.invocations, self.append_events)


def find_counterexample(
    relation: DependencyRelation,
    arena: VerificationArena,
) -> Counterexample | None:
    """Search the arena for a Definition 2 violation of ``relation``.

    Returns the first counterexample found, or ``None`` when the
    relation holds throughout the bounded universe.
    """
    prop = arena.property
    for history, rejected in arena.entries:
        for op in rejected:
            required = dependent_op_indices(history, relation, op.event.inv)
            for kept, subhistory in closed_subhistories(
                history, relation, required, proper_only=True
            ):
                if prop.admits(subhistory.append(op)):
                    return Counterexample(history, subhistory, kept, op)
    return None


def is_dependency_relation(
    relation: DependencyRelation,
    arena: VerificationArena,
) -> bool:
    """Does ``relation`` satisfy Definition 2 throughout the arena?"""
    return find_counterexample(relation, arena) is None


def required_pairs(
    arena: VerificationArena,
    universe: DependencyRelation | None = None,
) -> DependencyRelation:
    """Pairs contained in *every* atomic dependency relation (within bounds).

    A pair is required when deleting it from the total relation breaks
    Definition 2.  For static and dynamic atomicity this equals the
    unique minimal relation; for hybrid atomicity it is the intersection
    of all minimal relations (Theorem 4's corollary: the minimal static
    relation encompasses the union of the minimal hybrid relations, and
    the FlagSet shows the intersection can be a strict subset of every
    valid relation).
    """
    total = universe if universe is not None else arena.universe_pairs()
    needed: set[GroundPair] = set()
    for pair in total.pairs:
        if find_counterexample(total.without(pair), arena) is not None:
            needed.add(pair)
    return DependencyRelation(needed)


def is_minimal_relation(
    relation: DependencyRelation,
    arena: VerificationArena,
) -> bool:
    """Is ``relation`` valid with every single-pair deletion invalid?"""
    if not is_dependency_relation(relation, arena):
        return False
    return all(
        find_counterexample(relation.without(pair), arena) is not None
        for pair in relation.pairs
    )


def minimal_extensions(
    core: DependencyRelation,
    candidates: Iterable[GroundPair],
    arena: VerificationArena,
    *,
    max_added: int = 2,
) -> Iterator[DependencyRelation]:
    """Yield valid relations ``core ∪ A`` with every added pair essential.

    Used to reproduce the FlagSet result: the required core extends to a
    valid relation via *either* of two single pairs, neither contained in
    the other's extension.  An extension qualifies when it satisfies
    Definition 2 and removing any one *added* pair breaks it again —
    i.e. the addition set is minimal (the core itself is taken as given;
    certifying global minimality of every core pair can need witnesses
    beyond any fixed bound).
    """
    from itertools import combinations

    candidates = [pair for pair in candidates if pair not in core.pairs]
    for size in range(max_added + 1):
        for added in combinations(candidates, size):
            extended = core
            for pair in added:
                extended = extended.with_pair(pair)
            if not is_dependency_relation(extended, arena):
                continue
            if all(
                find_counterexample(extended.without(pair), arena) is not None
                for pair in added
            ):
                yield extended
