"""The unique minimal dynamic dependency relation (Theorem 10).

Theorem 10: ``inv ≥D e`` iff there exists a response ``res`` such that
``[inv;res]`` and ``e`` do not *commute*, where two events commute
(Definition 8) when for every serial history ``h`` with ``h·e`` and
``h·e'`` both legal, ``h·e·e'`` and ``h·e'·e`` are equivalent legal
histories.

:func:`commute` checks Definition 8 exhaustively over all legal
histories of at most ``max_events`` events, and
:func:`minimal_dynamic_dependency` assembles ``≥D`` from it.  The
commutativity table computed here is also what the locking
concurrency-control scheme (:mod:`repro.cc.locking`) uses for its
conflict matrix — the paper's point that strong dynamic atomicity ties
*both* concurrency and availability to the same commutativity structure.
"""

from __future__ import annotations

from repro.dependency.relation import DependencyRelation, GroundPair
from repro.histories.events import Event
from repro.spec.datatype import SerialDataType
from repro.spec.enumerate import event_alphabet, legal_serial_histories
from repro.spec.legality import LegalityOracle


def commute(
    datatype: SerialDataType,
    first: Event,
    second: Event,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
) -> bool:
    """Definition 8, bounded: do ``first`` and ``second`` commute?

    Checks every legal serial history ``h`` of at most ``max_events``
    events: whenever ``h·first`` and ``h·second`` are both legal,
    ``h·first·second`` and ``h·second·first`` must be equivalent legal
    histories.
    """
    oracle = oracle or LegalityOracle(datatype)
    for history in legal_serial_histories(datatype, max_events, oracle):
        if not (
            oracle.is_legal(history + (first,))
            and oracle.is_legal(history + (second,))
        ):
            continue
        forward = history + (first, second)
        backward = history + (second, first)
        if not oracle.is_legal(forward) or not oracle.is_legal(backward):
            return False
        if not oracle.equivalent(forward, backward):
            return False
    return True


def commutativity_table(
    datatype: SerialDataType,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
    events: tuple[Event, ...] | None = None,
) -> dict[tuple[Event, Event], bool]:
    """The full pairwise commutativity table over the event alphabet.

    Symmetric by definition, so only one orientation is computed and the
    table is mirrored.
    """
    oracle = oracle or LegalityOracle(datatype)
    if events is None:
        events = event_alphabet(datatype, max_events + 2, oracle)
    table: dict[tuple[Event, Event], bool] = {}
    for i, first in enumerate(events):
        for second in events[i:]:
            result = commute(datatype, first, second, max_events, oracle)
            table[(first, second)] = result
            table[(second, first)] = result
    return table


def minimal_dynamic_dependency(
    datatype: SerialDataType,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
    events: tuple[Event, ...] | None = None,
) -> DependencyRelation:
    """Compute ``≥D`` by the Theorem 10 characterization.

    ``inv ≥D e`` whenever some ``[inv;res]`` event from the alphabet
    fails to commute with ``e``.  Raising ``max_events`` can only add
    pairs (more histories can witness non-commutativity).
    """
    oracle = oracle or LegalityOracle(datatype)
    if events is None:
        events = event_alphabet(datatype, max_events + 2, oracle)
    table = commutativity_table(datatype, max_events, oracle, events)
    pairs: set[GroundPair] = set()
    for inv_event in events:
        for other in events:
            if not table[(inv_event, other)]:
                pairs.add((inv_event.inv, other))
    return DependencyRelation(pairs)
