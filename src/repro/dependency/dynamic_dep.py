"""The unique minimal dynamic dependency relation (Theorem 10).

Theorem 10: ``inv ≥D e`` iff there exists a response ``res`` such that
``[inv;res]`` and ``e`` do not *commute*, where two events commute
(Definition 8) when for every serial history ``h`` with ``h·e`` and
``h·e'`` both legal, ``h·e·e'`` and ``h·e'·e`` are equivalent legal
histories.

:func:`commute` checks Definition 8 exhaustively over all legal
histories of at most ``max_events`` events for a *single* pair, and is
kept as the executable reference implementation.  The full table
(:func:`commutativity_table`) no longer calls it per pair — doing so
re-enumerates the bounded history universe once per pair, O(pairs ×
histories) full traversals.  Instead a **shared pass** walks the
universe exactly once: at each legal history a
:class:`~repro.spec.legality.LegalityCursor` knows which alphabet events
are enabled, and every not-yet-refuted pair with both events enabled is
checked with two memoized trie hops.  The equivalence of the two
implementations is test-enforced (``tests/test_compute.py``).

The commutativity table computed here is also what the locking
concurrency-control scheme (:mod:`repro.cc.locking`) uses for its
conflict matrix — the paper's point that strong dynamic atomicity ties
*both* concurrency and availability to the same commutativity structure.

The shared pass can additionally be sharded across worker processes
(``jobs``): each top-level subtree of the history universe is an
independent unit, refuted pairs merge by union, and the empty history is
checked by the coordinating process.
"""

from __future__ import annotations

from repro.dependency.relation import DependencyRelation, GroundPair
from repro.histories.events import Event, SerialHistory
from repro.spec.datatype import SerialDataType
from repro.spec.enumerate import event_alphabet, legal_serial_histories
from repro.spec.legality import LegalityOracle

#: An unordered event pair, stored as alphabet indices ``i <= j``.
IndexPair = tuple[int, int]


def commute(
    datatype: SerialDataType,
    first: Event,
    second: Event,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
) -> bool:
    """Definition 8, bounded: do ``first`` and ``second`` commute?

    Checks every legal serial history ``h`` of at most ``max_events``
    events: whenever ``h·first`` and ``h·second`` are both legal,
    ``h·first·second`` and ``h·second·first`` must be equivalent legal
    histories.  Reference implementation — the table builder uses the
    shared pass below, whose agreement with this function is test-enforced.
    """
    oracle = oracle or LegalityOracle(datatype)
    for history in legal_serial_histories(datatype, max_events, oracle):
        if not (
            oracle.is_legal(history + (first,))
            and oracle.is_legal(history + (second,))
        ):
            continue
        forward = history + (first, second)
        backward = history + (second, first)
        if not oracle.is_legal(forward) or not oracle.is_legal(backward):
            return False
        if not oracle.equivalent(forward, backward):
            return False
    return True


def _refute_pairs_in_subtree(
    oracle: LegalityOracle,
    events: tuple[Event, ...],
    max_events: int,
    root: SerialHistory = (),
    refuted: set[IndexPair] | None = None,
) -> set[IndexPair]:
    """One walk over the legal-history subtree under ``root``.

    Returns the index pairs ``(i, j)`` with ``i <= j`` for which some
    history in the subtree witnesses non-commutativity (Definition 8).
    ``refuted`` carries pairs already ruled out, so their checks are
    skipped from the start.
    """
    invocations = list(oracle.datatype.invocations())
    total_pairs = len(events) * (len(events) + 1) // 2
    refuted = set() if refuted is None else set(refuted)

    def visit(cursor, depth: int) -> None:
        if len(refuted) == total_pairs:
            return  # every pair already has a witness; nothing left to learn
        enabled: dict[int, object] = {}
        for idx, ev in enumerate(events):
            child = cursor.step(ev)
            if child.legal:
                enabled[idx] = child
        indices = sorted(enabled)
        for a, i in enumerate(indices):
            child_i = enabled[i]
            for j in indices[a:]:
                if (i, j) in refuted:
                    continue
                forward = child_i.step(events[j])
                backward = enabled[j].step(events[i])
                if (
                    not forward.legal
                    or not backward.legal
                    or forward.frontier_key() != backward.frontier_key()
                ):
                    refuted.add((i, j))
        if depth >= max_events:
            return
        for inv in invocations:
            for res in sorted(cursor.responses(inv), key=str):
                visit(cursor.step(Event(inv, res)), depth + 1)

    cursor = oracle.cursor(root)
    if cursor.legal:
        visit(cursor, len(root))
    return refuted


def _shard_worker(
    payload: tuple[SerialDataType, tuple[Event, ...], int, tuple[SerialHistory, ...]],
) -> set[IndexPair]:
    """Process-pool unit: refute pairs over a batch of top-level subtrees."""
    datatype, events, max_events, roots = payload
    oracle = LegalityOracle(datatype)
    refuted: set[IndexPair] = set()
    total_pairs = len(events) * (len(events) + 1) // 2
    for root in roots:
        if len(refuted) == total_pairs:
            break
        refuted = _refute_pairs_in_subtree(oracle, events, max_events, root, refuted)
    return refuted


def _refuted_pairs(
    datatype: SerialDataType,
    events: tuple[Event, ...],
    max_events: int,
    oracle: LegalityOracle,
    jobs: int | None,
) -> set[IndexPair]:
    """All non-commuting index pairs, serially or sharded across processes."""
    from repro.compute.parallel import parallel_map, resolve_jobs

    jobs = resolve_jobs(jobs)
    root = oracle.cursor()
    first_events = sorted(
        (
            Event(inv, res)
            for inv in datatype.invocations()
            for res in root.responses(inv)
        ),
        key=str,
    )
    if jobs <= 1 or max_events < 1 or len(first_events) <= 1:
        return _refute_pairs_in_subtree(oracle, events, max_events)
    # The coordinator checks the empty history; workers split the
    # top-level subtrees (round-robin, so expensive neighbours spread out).
    refuted = _refute_pairs_in_subtree(oracle, events, 0)
    batches = [
        tuple((e,) for e in first_events[shard::jobs])
        for shard in range(min(jobs, len(first_events)))
    ]
    results, _parallel = parallel_map(
        _shard_worker,
        [(datatype, events, max_events, batch) for batch in batches],
        jobs,
    )
    for shard_refuted in results:
        refuted |= shard_refuted
    return refuted


def commutativity_table(
    datatype: SerialDataType,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
    events: tuple[Event, ...] | None = None,
    *,
    jobs: int | None = None,
) -> dict[tuple[Event, Event], bool]:
    """The full pairwise commutativity table over the event alphabet.

    Symmetric by definition, so only one orientation is computed and the
    table is mirrored.  ``jobs`` shards the single shared traversal
    across processes by top-level history subtree (default: the
    ``REPRO_JOBS`` environment variable, else serial).
    """
    oracle = oracle or LegalityOracle(datatype)
    if events is None:
        events = event_alphabet(datatype, max_events + 2, oracle)
    events = tuple(events)
    refuted = _refuted_pairs(datatype, events, max_events, oracle, jobs)
    table: dict[tuple[Event, Event], bool] = {}
    for i, first in enumerate(events):
        for j in range(i, len(events)):
            second = events[j]
            result = (i, j) not in refuted
            table[(first, second)] = result
            table[(second, first)] = result
    return table


def dependency_from_commutativity(
    events: tuple[Event, ...],
    table: dict[tuple[Event, Event], bool],
) -> DependencyRelation:
    """Assemble ``≥D`` from a commutativity table (Theorem 10).

    ``inv ≥D e`` whenever some ``[inv;res]`` event from the alphabet
    fails to commute with ``e``.
    """
    pairs: set[GroundPair] = set()
    for inv_event in events:
        for other in events:
            if not table[(inv_event, other)]:
                pairs.add((inv_event.inv, other))
    return DependencyRelation(pairs)


def minimal_dynamic_dependency(
    datatype: SerialDataType,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
    events: tuple[Event, ...] | None = None,
    *,
    jobs: int | None = None,
) -> DependencyRelation:
    """Compute ``≥D`` by the Theorem 10 characterization.

    Raising ``max_events`` can only add pairs (more histories can
    witness non-commutativity).
    """
    oracle = oracle or LegalityOracle(datatype)
    if events is None:
        events = event_alphabet(datatype, max_events + 2, oracle)
    table = commutativity_table(datatype, max_events, oracle, events, jobs=jobs)
    return dependency_from_commutativity(tuple(events), table)
