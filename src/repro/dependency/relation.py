"""Dependency relations between invocations and events.

The kernel works with *ground* relations — finite sets of
``(Invocation, Event)`` pairs over a data type's generator alphabet —
because every check (closure, Definition 2, the Theorem 6/10 searches)
is combinatorial.  The paper, however, states its relations at the
*schema* level (``Deq() ≥ Enq(x);Ok()`` for every item ``x``), so
:class:`SchemaPair` describes a pair pattern by operation names and
response kind, and :meth:`DependencyRelation.from_schemas` grounds a set
of patterns over an alphabet.  :meth:`DependencyRelation.schema_pairs`
projects a ground relation back for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.histories.events import Event, Invocation

GroundPair = tuple[Invocation, Event]


@dataclass(frozen=True, slots=True)
class SchemaPair:
    """A pair pattern: invocation operation ≥ event operation/response kind.

    ``ev_kind`` of ``None`` matches every response kind.  ``inv_args``
    and ``ev_args`` of ``None`` match any arguments; fixing them writes
    patterns like the paper's FlagSet pair ``Shift(3) ≥ Shift(1);Ok()``
    = ``SchemaPair("Shift", "Shift", "Ok", inv_args=(3,), ev_args=(1,))``.
    For example ``Seal() ≥ Write(x);Ok()`` (any ``x``) is
    ``SchemaPair("Seal", "Write", "Ok")``.
    """

    inv_op: str
    ev_op: str
    ev_kind: str | None = "Ok"
    inv_args: tuple | None = None
    ev_args: tuple | None = None
    #: The paper writes pairs like ``Enq(x) ≥ Deq();Ok(y)`` with *distinct*
    #: variable names when the dependency holds only for distinct values
    #: (same-value operations commute).  With ``distinct=True`` the pair
    #: matches only when the invocation's argument tuple differs from the
    #: event's distinguishing values — the event invocation's arguments
    #: when it has any, otherwise the event response's values.
    distinct: bool = False

    def matches(self, invocation: Invocation, event: Event) -> bool:
        if not (
            invocation.op == self.inv_op
            and event.inv.op == self.ev_op
            and (self.ev_kind is None or event.res.kind == self.ev_kind)
            and (self.inv_args is None or invocation.args == self.inv_args)
            and (self.ev_args is None or event.inv.args == self.ev_args)
        ):
            return False
        if self.distinct:
            witness = event.inv.args if event.inv.args else event.res.values
            if invocation.args == witness:
                return False
        return True

    def __str__(self) -> str:
        kind = self.ev_kind if self.ev_kind is not None else "*"
        inv_args = "x" if self.distinct else ""
        if self.inv_args is not None:
            inv_args = ", ".join(map(repr, self.inv_args))
        ev_args = "y≠x" if self.distinct else ""
        if self.ev_args is not None:
            ev_args = ", ".join(map(repr, self.ev_args))
        return f"{self.inv_op}({inv_args}) ≥ {self.ev_op}({ev_args});{kind}"


class DependencyRelation:
    """An immutable ground relation between invocations and events."""

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[GroundPair] = ()):
        self._pairs = frozenset(pairs)

    @staticmethod
    def from_schemas(
        schemas: Iterable[SchemaPair],
        invocations: Iterable[Invocation],
        events: Iterable[Event],
    ) -> "DependencyRelation":
        """Ground schema patterns over an invocation and event alphabet."""
        schemas = tuple(schemas)
        invocations = tuple(invocations)
        events = tuple(events)
        pairs = {
            (inv, ev)
            for schema in schemas
            for inv in invocations
            for ev in events
            if schema.matches(inv, ev)
        }
        return DependencyRelation(pairs)

    @staticmethod
    def total(
        invocations: Iterable[Invocation], events: Iterable[Event]
    ) -> "DependencyRelation":
        """The total relation: every invocation depends on every event.

        The total relation is always an atomic dependency relation (it
        forces views to be complete), so it is the safe upper bound from
        which :func:`repro.dependency.verify.required_pairs` prunes.
        """
        invocations = tuple(invocations)
        return DependencyRelation(
            (inv, ev) for inv in invocations for ev in events
        )

    # -- queries -------------------------------------------------------------

    def depends(self, invocation: Invocation, event: Event) -> bool:
        """``invocation ≥ event``?"""
        return (invocation, event) in self._pairs

    @property
    def pairs(self) -> frozenset[GroundPair]:
        return self._pairs

    def schema_pairs(self) -> tuple[SchemaPair, ...]:
        """Project to the schema level for reporting.

        Each ground pair maps to ``(inv.op, ev.inv.op, ev.res.kind)``;
        the projection is lossy when a relation distinguishes arguments,
        which none of the paper's relations do.
        """
        schemas = {
            SchemaPair(inv.op, ev.inv.op, ev.res.kind) for inv, ev in self._pairs
        }
        return tuple(sorted(schemas, key=str))

    # -- set algebra -----------------------------------------------------------

    def __contains__(self, pair: GroundPair) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[GroundPair]:
        return iter(sorted(self._pairs, key=lambda p: (str(p[0]), str(p[1]))))

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DependencyRelation) and self._pairs == other._pairs
        )

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __le__(self, other: "DependencyRelation") -> bool:
        return self._pairs <= other._pairs

    def __lt__(self, other: "DependencyRelation") -> bool:
        return self._pairs < other._pairs

    def union(self, other: "DependencyRelation") -> "DependencyRelation":
        return DependencyRelation(self._pairs | other._pairs)

    def difference(self, other: "DependencyRelation") -> "DependencyRelation":
        return DependencyRelation(self._pairs - other._pairs)

    def without(self, pair: GroundPair) -> "DependencyRelation":
        return DependencyRelation(self._pairs - {pair})

    def with_pair(self, pair: GroundPair) -> "DependencyRelation":
        return DependencyRelation(self._pairs | {pair})

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.schema_pairs())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DependencyRelation({len(self._pairs)} pairs)"

    def describe(self) -> str:
        """Full ground listing, one ``inv ≥ event`` pair per line."""
        return "\n".join(f"{inv} ≥ {ev}" for inv, ev in self)
