"""Lamport logical clocks.

Each site in the replicated system carries a :class:`LamportClock`.  The
clock ticks on every local event and merges on every message receipt, so
that the ``happens-before`` relation of the execution is embedded in the
total order of the generated :class:`~repro.clocks.timestamps.Timestamp`
values.  The replication runtime (front-ends and repositories) uses these
clocks to timestamp log entries, Begin events, and Commit events.
"""

from __future__ import annotations

from repro.clocks.timestamps import Timestamp


class LamportClock:
    """A per-site Lamport clock.

    >>> a, b = LamportClock(site=1), LamportClock(site=2)
    >>> t1 = a.tick()
    >>> t2 = b.witness(t1)   # receive a message carrying t1
    >>> t1 < t2
    True
    """

    def __init__(self, site: int, start: int = 0):
        if start < 0:
            raise ValueError("clock counters are non-negative")
        self._site = site
        self._counter = start

    @property
    def site(self) -> int:
        """The site identifier used to break timestamp ties."""
        return self._site

    @property
    def now(self) -> Timestamp:
        """The timestamp of the most recent local event."""
        return Timestamp(self._counter, self._site)

    def tick(self) -> Timestamp:
        """Advance the clock for a local event and return its timestamp."""
        self._counter += 1
        return self.now

    def witness(self, other: Timestamp) -> Timestamp:
        """Merge a timestamp received in a message, then tick.

        Returns the timestamp of the receive event, which is guaranteed to
        be greater than both the local past and ``other``.
        """
        if other.counter > self._counter:
            self._counter = other.counter
        return self.tick()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LamportClock(site={self._site}, counter={self._counter})"
