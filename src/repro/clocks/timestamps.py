"""Totally ordered logical timestamps.

A :class:`Timestamp` is a pair ``(counter, site)``.  Comparing the counter
first and breaking ties with the site identifier yields the total order
required by the paper: "A system of Lamport Clocks can be used to impose
an unambiguous ordering on Begin and Commit events" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True, slots=True)
class Timestamp:
    """A Lamport timestamp: logical counter with a site tiebreak.

    The generated ``order=True`` comparison compares ``counter`` first and
    ``site`` second, which is exactly the total order we need.
    """

    counter: int
    site: int = 0

    def next_at(self, site: int) -> "Timestamp":
        """Return the earliest timestamp at ``site`` strictly after ``self``."""
        return Timestamp(self.counter + 1, site)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.counter}.{self.site}"


#: The timestamp ordered before every timestamp any clock can produce.
ZERO = Timestamp(0, -1)


class TimestampGenerator:
    """A convenience source of strictly increasing timestamps at one site.

    This wraps a bare counter for code (tests, examples) that needs
    distinct ordered timestamps without simulating message exchange.  Code
    that models message passing should use
    :class:`~repro.clocks.lamport.LamportClock` instead.
    """

    def __init__(self, site: int = 0, start: int = 1):
        if start < 1:
            raise ValueError("timestamp counters start at 1")
        self._site = site
        self._counter = start - 1

    @property
    def site(self) -> int:
        return self._site

    def next(self) -> Timestamp:
        """Return a fresh timestamp strictly greater than all prior ones."""
        self._counter += 1
        return Timestamp(self._counter, self._site)

    def peek(self) -> Timestamp:
        """Return the timestamp that :meth:`next` would produce, without advancing."""
        return Timestamp(self._counter + 1, self._site)

    def __iter__(self) -> Iterator[Timestamp]:
        while True:
            yield self.next()
