"""Totally ordered logical timestamps.

A :class:`Timestamp` is a pair ``(counter, site)``.  Comparing the counter
first and breaking ties with the site identifier yields the total order
required by the paper: "A system of Lamport Clocks can be used to impose
an unambiguous ordering on Begin and Commit events" (Section 4).

Implementation note (throughput): :class:`Timestamp` is a hand-written
``__slots__`` value type with a precomputed hash.  Log-set algebra and
sort keys hash and compare timestamps constantly on the replication hot
path; a ``@dataclass(order=True)`` rebuilds ``(counter, site)`` tuples
for every comparison and rehashes per call.  The hash value equals the
dataclass hash (``hash((counter, site))``), so set iteration orders —
and therefore every seeded fingerprint — are unchanged.  Timestamps are
*not* interned: their key space grows linearly with simulated time, so
an intern table would defeat the bounded-memory soak guarantees (see
``docs/PERFORMANCE.md``, "Simulator core").
"""

from __future__ import annotations

from typing import Iterator


class Timestamp:
    """A Lamport timestamp: logical counter with a site tiebreak.

    Comparisons order by ``counter`` first and ``site`` second, which is
    exactly the total order we need.
    """

    __slots__ = ("counter", "site", "_hash")

    def __init__(self, counter: int, site: int = 0):
        object.__setattr__(self, "counter", counter)
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "_hash", hash((counter, site)))

    def __setattr__(self, name, value):
        raise AttributeError(f"Timestamp is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"Timestamp is immutable (tried to delete {name!r})")

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self.counter == other.counter and self.site == other.site

    def __lt__(self, other):
        if not isinstance(other, Timestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter < other.counter
        return self.site < other.site

    def __le__(self, other):
        if not isinstance(other, Timestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter < other.counter
        return self.site <= other.site

    def __gt__(self, other):
        if not isinstance(other, Timestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter > other.counter
        return self.site > other.site

    def __ge__(self, other):
        if not isinstance(other, Timestamp):
            return NotImplemented
        if self.counter != other.counter:
            return self.counter > other.counter
        return self.site >= other.site

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        return (Timestamp, (self.counter, self.site))

    def __repr__(self):
        return f"Timestamp(counter={self.counter!r}, site={self.site!r})"

    def next_at(self, site: int) -> "Timestamp":
        """Return the earliest timestamp at ``site`` strictly after ``self``."""
        return Timestamp(self.counter + 1, site)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.counter}.{self.site}"


#: The timestamp ordered before every timestamp any clock can produce.
ZERO = Timestamp(0, -1)


class TimestampGenerator:
    """A convenience source of strictly increasing timestamps at one site.

    This wraps a bare counter for code (tests, examples) that needs
    distinct ordered timestamps without simulating message exchange.  Code
    that models message passing should use
    :class:`~repro.clocks.lamport.LamportClock` instead.
    """

    def __init__(self, site: int = 0, start: int = 1):
        if start < 1:
            raise ValueError("timestamp counters start at 1")
        self._site = site
        self._counter = start - 1

    @property
    def site(self) -> int:
        return self._site

    def next(self) -> Timestamp:
        """Return a fresh timestamp strictly greater than all prior ones."""
        self._counter += 1
        return Timestamp(self._counter, self._site)

    def peek(self) -> Timestamp:
        """Return the timestamp that :meth:`next` would produce, without advancing."""
        return Timestamp(self._counter + 1, self._site)

    def __iter__(self) -> Iterator[Timestamp]:
        while True:
            yield self.next()
