"""Logical clocks and globally ordered timestamps.

The paper orders ``Begin`` and ``Commit`` events with a system of Lamport
clocks [Lamport 78].  This subpackage provides the clock
(:class:`~repro.clocks.lamport.LamportClock`) and the totally ordered
timestamps it generates (:class:`~repro.clocks.timestamps.Timestamp`).
"""

from repro.clocks.lamport import LamportClock
from repro.clocks.timestamps import Timestamp, TimestampGenerator

__all__ = ["LamportClock", "Timestamp", "TimestampGenerator"]
