"""Serializations of behavioral histories.

The serialization of a behavioral history ``H`` in a total order ``>>``
is the serial history constructed by reordering the events in ``H`` so
that if ``B >> A`` then the subsequence of events associated with ``A``
precedes the subsequence associated with ``B`` (paper, Section 3.1).

Three families of serializations appear in the paper:

* **static** serializations commit some set of active actions and
  serialize all non-aborted actions in the order of their Begin events;
* **hybrid** serializations do the same in the order of Commit events
  (newly committed actions follow all previously committed ones, in every
  possible relative order);
* **dynamic** serializations use every order consistent with the partial
  ``precedes`` order (A precedes B if B executes an operation after A
  commits — Section 5).

Each generator below yields *deduplicated* serial histories (two distinct
orders can induce the same serial history when some actions executed no
events).
"""

from __future__ import annotations

from itertools import chain, combinations, permutations
from typing import Iterable, Iterator, Sequence

from repro.histories.behavioral import Action, BehavioralHistory, Commit, Op
from repro.histories.events import Event, SerialHistory


def serialize(history: BehavioralHistory, order: Sequence[Action]) -> SerialHistory:
    """Serialize ``history`` in the given total order of actions.

    Only events of actions listed in ``order`` are included; each
    action's events keep their relative order from the history.
    """
    result: list[Event] = []
    for action in order:
        result.extend(history.events_of(action))
    return tuple(result)


def action_subsets(items: frozenset[Action]) -> Iterator[tuple[Action, ...]]:
    ordered = sorted(items)
    return chain.from_iterable(
        combinations(ordered, size) for size in range(len(ordered) + 1)
    )


def relevant_active(history: BehavioralHistory) -> frozenset[Action]:
    """Active actions that executed at least one event.

    Actions that began but executed nothing contribute no events to any
    serialization, so committing them changes nothing; excluding them
    from subset enumeration is a pure optimization (long histories from
    the replication runtime would otherwise enumerate 2^|actions|
    subsets of idle actions).
    """
    return frozenset(a for a in history.active if history.events_of(a))


def static_serializations(history: BehavioralHistory) -> Iterator[SerialHistory]:
    """Yield every static serialization of ``history``.

    A static serialization commits some set of active actions and
    serializes the committed actions in the order of their Begin events
    (paper, Section 4).
    """
    committed = history.committed
    seen: set[SerialHistory] = set()
    for subset in action_subsets(relevant_active(history)):
        included = committed | set(subset)
        order = [a for a in history.begin_order if a in included]
        serial = serialize(history, order)
        if serial not in seen:
            seen.add(serial)
            yield serial


def hybrid_serializations(history: BehavioralHistory) -> Iterator[SerialHistory]:
    """Yield every hybrid serialization of ``history``.

    A hybrid serialization commits some set of active actions and
    serializes committed actions in the order of their Commit events.
    Newly committed actions receive commit timestamps later than every
    existing Commit, in every possible relative order.
    """
    base = list(history.commit_order)
    seen: set[SerialHistory] = set()
    for subset in action_subsets(relevant_active(history)):
        for tail in permutations(subset):
            serial = serialize(history, base + list(tail))
            if serial not in seen:
                seen.add(serial)
                yield serial


def precedes_pairs(history: BehavioralHistory) -> frozenset[tuple[Action, Action]]:
    """The ``precedes`` partial order of Section 5, as a set of pairs.

    ``(A, B)`` is included when B executes an operation after A commits.
    The result is irreflexive and (by construction from a linear history)
    acyclic.
    """
    pairs: set[tuple[Action, Action]] = set()
    committed_so_far: list[Action] = []
    for entry in history:
        if isinstance(entry, Commit):
            committed_so_far.append(entry.action)
        elif isinstance(entry, Op):
            for earlier in committed_so_far:
                if earlier != entry.action:
                    pairs.add((earlier, entry.action))
    return frozenset(pairs)


def linear_extensions(
    nodes: Sequence[Action], pairs: Iterable[tuple[Action, Action]]
) -> Iterator[tuple[Action, ...]]:
    """Yield every linear extension of the partial order ``pairs`` on ``nodes``."""
    node_set = set(nodes)
    succ: dict[Action, set[Action]] = {n: set() for n in nodes}
    indegree: dict[Action, int] = {n: 0 for n in nodes}
    for a, b in pairs:
        if a in node_set and b in node_set and b not in succ[a]:
            succ[a].add(b)
            indegree[b] += 1

    prefix: list[Action] = []

    def extend() -> Iterator[tuple[Action, ...]]:
        if len(prefix) == len(nodes):
            yield tuple(prefix)
            return
        for node in sorted(node_set):
            if indegree[node] == 0:
                node_set.remove(node)
                prefix.append(node)
                for later in succ[node]:
                    indegree[later] -= 1
                yield from extend()
                for later in succ[node]:
                    indegree[later] += 1
                prefix.pop()
                node_set.add(node)

    return extend()


def dynamic_serializations(history: BehavioralHistory) -> Iterator[SerialHistory]:
    """Yield every dynamic serialization of ``history``.

    A dynamic serialization commits some set of active actions and
    serializes them, together with the already-committed actions, in an
    order consistent with the ``precedes`` partial order (Section 5).
    """
    pairs = precedes_pairs(history)
    committed = history.committed
    seen: set[SerialHistory] = set()
    for subset in action_subsets(relevant_active(history)):
        nodes = sorted(committed | set(subset))
        for order in linear_extensions(nodes, pairs):
            serial = serialize(history, order)
            if serial not in seen:
                seen.add(serial)
                yield serial


def dynamic_serialization_orders(
    history: BehavioralHistory,
) -> Iterator[tuple[Action, ...]]:
    """Yield the action orders underlying :func:`dynamic_serializations`.

    Exposed separately for Definition 7's equivalence requirement, where
    the checker needs each serialization (not just the distinct ones).
    """
    pairs = precedes_pairs(history)
    committed = history.committed
    for subset in action_subsets(relevant_active(history)):
        nodes = sorted(committed | set(subset))
        yield from linear_extensions(nodes, pairs)
