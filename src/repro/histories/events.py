"""Invocations, responses, and events.

An *event* is a pair consisting of an operation invocation and a response
(paper, Section 3.1).  For example the Queue event ``Enq(x);Ok()`` pairs
the invocation ``Enq(x)`` with the normal response ``Ok()``, and
``Deq();Empty()`` pairs ``Deq()`` with the exceptional response
``Empty()``.

All three structures are immutable and hashable so they can be used as
dictionary keys, set members, and members of serial histories (which are
plain tuples of events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

#: The response kind used for normal (non-exceptional) termination.
OK = "Ok"


@dataclass(frozen=True, slots=True)
class Invocation:
    """An operation invocation: an operation name plus argument values.

    Arguments must be hashable; in the bounded-model-checking kernel they
    are drawn from each data type's small generator alphabet.
    """

    op: str
    args: tuple[Hashable, ...] = ()

    def __str__(self) -> str:
        return f"{self.op}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True, slots=True)
class Response:
    """An operation response: a termination kind plus result values.

    ``kind`` is :data:`OK` for normal termination, or the name of the
    signalled exception (``"Empty"``, ``"Disabled"``, ...) otherwise —
    following the CLU-style termination model the paper uses [19].
    """

    kind: str = OK
    values: tuple[Hashable, ...] = ()

    @property
    def is_normal(self) -> bool:
        """True when the response terminated with ``Ok`` (paper, Section 4)."""
        return self.kind == OK

    def __str__(self) -> str:
        return f"{self.kind}({', '.join(map(repr, self.values))})"


@dataclass(frozen=True, slots=True)
class Event:
    """An invocation paired with the response the object returned for it."""

    inv: Invocation
    res: Response

    @property
    def is_normal(self) -> bool:
        """True when the event's response is normal (terminates with Ok)."""
        return self.res.is_normal

    def __str__(self) -> str:
        return f"{self.inv};{self.res}"


def ok(*values: Hashable) -> Response:
    """Build a normal ``Ok(...)`` response."""
    return Response(OK, tuple(values))


def signal(kind: str, *values: Hashable) -> Response:
    """Build an exceptional response of the given kind."""
    return Response(kind, tuple(values))


def event(op: str, args: tuple[Hashable, ...] = (), res: Response | None = None) -> Event:
    """Build an event; the response defaults to a bare ``Ok()``."""
    return Event(Invocation(op, args), res if res is not None else ok())


#: A serial history is simply a tuple of events; tuples are used directly
#: (rather than a wrapper class) so the model-checking kernel can hash,
#: slice, and concatenate them at native speed.
SerialHistory = tuple[Event, ...]


def format_serial(history: SerialHistory, sep: str = "\n") -> str:
    """Render a serial history one event per line, as the paper prints them."""
    return sep.join(str(e) for e in history)
