"""Invocations, responses, and events.

An *event* is a pair consisting of an operation invocation and a response
(paper, Section 3.1).  For example the Queue event ``Enq(x);Ok()`` pairs
the invocation ``Enq(x)`` with the normal response ``Ok()``, and
``Deq();Empty()`` pairs ``Deq()`` with the exceptional response
``Empty()``.

All three structures are immutable and hashable so they can be used as
dictionary keys, set members, and members of serial histories (which are
plain tuples of events).

Implementation note (throughput): these are *interned flyweights* with
precomputed hashes.  The replication hot path (`Network.gather` →
``FrontEnd`` → ``Repository``) hashes events on every trie hop, log-set
operation, and conflict check; a ``@dataclass`` recomputes the recursive
field hash on each call, which profiling showed at hundreds of
thousands of calls per benchmark run.  Interning is *safe* here — and
only here — because the alphabet is bounded: operations, argument
values, and response values are drawn from each data type's small
generator alphabet, so the intern tables stay tiny for the life of the
process.  A cap (:data:`_INTERN_LIMIT`) keeps adversarial value streams
from growing the tables without bound: past the cap, construction falls
back to plain (uninterned, but still hash-cached) instances with
identical semantics.  Timestamps and log entries are deliberately *not*
interned — their key spaces grow with the run — see
``docs/PERFORMANCE.md`` ("Simulator core").
"""

from __future__ import annotations

from typing import Hashable

#: The response kind used for normal (non-exceptional) termination.
OK = "Ok"

#: Intern tables stop growing past this many distinct values per class;
#: the bounded generator alphabets of the built-in types use a few dozen.
_INTERN_LIMIT = 4096


class Invocation:
    """An operation invocation: an operation name plus argument values.

    Arguments must be hashable; in the bounded-model-checking kernel they
    are drawn from each data type's small generator alphabet.
    """

    __slots__ = ("op", "args", "_hash")

    _interned: dict = {}

    def __new__(cls, op: str, args: tuple[Hashable, ...] = ()):
        key = (op, args)
        table = cls._interned
        cached = table.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(key))
        if len(table) < _INTERN_LIMIT:
            table[key] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError(f"Invocation is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"Invocation is immutable (tried to delete {name!r})")

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Invocation):
            return NotImplemented
        return self.op == other.op and self.args == other.args

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        # Re-runs the constructor on unpickle, so worker processes
        # re-intern into their own tables.
        return (Invocation, (self.op, self.args))

    def __repr__(self):
        return f"Invocation(op={self.op!r}, args={self.args!r})"

    def __str__(self) -> str:
        return f"{self.op}({', '.join(map(repr, self.args))})"


class Response:
    """An operation response: a termination kind plus result values.

    ``kind`` is :data:`OK` for normal termination, or the name of the
    signalled exception (``"Empty"``, ``"Disabled"``, ...) otherwise —
    following the CLU-style termination model the paper uses [19].
    """

    __slots__ = ("kind", "values", "_hash")

    _interned: dict = {}

    def __new__(cls, kind: str = OK, values: tuple[Hashable, ...] = ()):
        key = (kind, values)
        table = cls._interned
        cached = table.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_hash", hash(key))
        if len(table) < _INTERN_LIMIT:
            table[key] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError(f"Response is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"Response is immutable (tried to delete {name!r})")

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Response):
            return NotImplemented
        return self.kind == other.kind and self.values == other.values

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        return (Response, (self.kind, self.values))

    def __repr__(self):
        return f"Response(kind={self.kind!r}, values={self.values!r})"

    @property
    def is_normal(self) -> bool:
        """True when the response terminated with ``Ok`` (paper, Section 4)."""
        return self.kind == OK

    def __str__(self) -> str:
        return f"{self.kind}({', '.join(map(repr, self.values))})"


class Event:
    """An invocation paired with the response the object returned for it."""

    __slots__ = ("inv", "res", "_hash")

    _interned: dict = {}

    def __new__(cls, inv: Invocation, res: Response):
        key = (inv, res)
        table = cls._interned
        cached = table.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "inv", inv)
        object.__setattr__(self, "res", res)
        object.__setattr__(self, "_hash", hash(key))
        if len(table) < _INTERN_LIMIT:
            table[key] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError(f"Event is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"Event is immutable (tried to delete {name!r})")

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Event):
            return NotImplemented
        return self.inv == other.inv and self.res == other.res

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        return (Event, (self.inv, self.res))

    def __repr__(self):
        return f"Event(inv={self.inv!r}, res={self.res!r})"

    @property
    def is_normal(self) -> bool:
        """True when the event's response is normal (terminates with Ok)."""
        return self.res.is_normal

    def __str__(self) -> str:
        return f"{self.inv};{self.res}"


def ok(*values: Hashable) -> Response:
    """Build a normal ``Ok(...)`` response."""
    return Response(OK, tuple(values))


def signal(kind: str, *values: Hashable) -> Response:
    """Build an exceptional response of the given kind."""
    return Response(kind, tuple(values))


def event(op: str, args: tuple[Hashable, ...] = (), res: Response | None = None) -> Event:
    """Build an event; the response defaults to a bare ``Ok()``."""
    return Event(Invocation(op, args), res if res is not None else ok())


#: A serial history is simply a tuple of events; tuples are used directly
#: (rather than a wrapper class) so the model-checking kernel can hash,
#: slice, and concatenate them at native speed.
SerialHistory = tuple[Event, ...]


def format_serial(history: SerialHistory, sep: str = "\n") -> str:
    """Render a serial history one event per line, as the paper prints them."""
    return sep.join(str(e) for e in history)
