"""Rendering behavioral histories as per-action timelines.

The paper prints behavioral histories as flat event lists; for debugging
concurrency (and for counterexample output) a columnar timeline — one
column per action, one row per history entry — shows interleaving at a
glance:

    time  | A               | B
    ------+-----------------+----------------
        0 | Begin           |
        1 |                 | Begin
        2 | Enq('x');Ok()   |
        3 |                 | Deq();Ok('x')
        4 | Commit          |
        5 |                 | Commit
"""

from __future__ import annotations

from repro.histories.behavioral import (
    Abort,
    Begin,
    BehavioralHistory,
    Commit,
    Op,
)


def timeline(history: BehavioralHistory, min_width: int = 12) -> str:
    """Render ``history`` as a per-action timeline table."""
    actions = list(history.begin_order)
    if not actions:
        return "(empty history)"
    cells: dict[str, list[str]] = {action: [] for action in actions}
    rows: list[tuple[int, str, str]] = []
    for index, entry in enumerate(history):
        if isinstance(entry, Begin):
            text = "Begin"
        elif isinstance(entry, Commit):
            text = "Commit"
        elif isinstance(entry, Abort):
            text = "Abort"
        else:
            assert isinstance(entry, Op)
            text = str(entry.event)
        rows.append((index, str(entry.action), text))

    widths = {action: max(min_width, len(str(action))) for action in actions}
    for _index, action, text in rows:
        widths[action] = max(widths[action], len(text))

    header_cells = [f"{str(a):<{widths[a]}}" for a in actions]
    lines = [
        "time  | " + " | ".join(header_cells),
        "------+-" + "-+-".join("-" * widths[a] for a in actions),
    ]
    for index, action, text in rows:
        row_cells = [
            f"{text if a == action else '':<{widths[a]}}" for a in actions
        ]
        lines.append(f"{index:>5} | " + " | ".join(row_cells))
    return "\n".join(lines)


def summarize(history: BehavioralHistory) -> str:
    """A one-line summary: action counts and outcome tallies."""
    ops = len(history.ops())
    return (
        f"{len(history.actions)} actions, {ops} operations, "
        f"{len(history.committed)} committed, {len(history.aborted)} aborted, "
        f"{len(history.active)} active"
    )
