"""Histories: the vocabulary of the paper's model of computation.

Section 3 of the paper defines *events* (invocation/response pairs),
*serial histories* (sequences of events), and *behavioral histories*
(sequences of Begin events, operation executions, Commit events, and
Abort events, each associated with an action).  This subpackage provides
those structures, the serialization machinery used by Definitions 3 and 7
(static, hybrid, and dynamic serializations), and equivalence of serial
histories.
"""

from repro.histories.events import (
    OK,
    Event,
    Invocation,
    Response,
    event,
    ok,
    signal,
)
from repro.histories.behavioral import (
    Abort,
    Begin,
    BehavioralHistory,
    Commit,
    Entry,
    Op,
)
from repro.histories.serialization import (
    dynamic_serializations,
    hybrid_serializations,
    precedes_pairs,
    serialize,
    static_serializations,
)

__all__ = [
    "OK",
    "Event",
    "Invocation",
    "Response",
    "event",
    "ok",
    "signal",
    "Abort",
    "Begin",
    "BehavioralHistory",
    "Commit",
    "Entry",
    "Op",
    "serialize",
    "static_serializations",
    "hybrid_serializations",
    "dynamic_serializations",
    "precedes_pairs",
]
