"""Behavioral histories.

In the presence of failure and concurrency, an object's state is given by
a *behavioral history*: a sequence of Begin events, operation executions,
Commit events, and Abort events, each associated with an action (paper,
Section 3.1).  :class:`BehavioralHistory` is an immutable sequence of
:class:`Entry` values together with the derived per-action information
the serialization machinery needs: begin order, commit order, the set of
active actions, and the ``precedes`` partial order of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SpecificationError
from repro.histories.events import Event

#: Actions are identified by short hashable names ("A", "B", ...) in the
#: theory kernel and by structured ids in the replication runtime.
Action = str


@dataclass(frozen=True, slots=True)
class Begin:
    """``Begin A`` — action ``action`` starts."""

    action: Action

    def __str__(self) -> str:
        return f"Begin {self.action}"


@dataclass(frozen=True, slots=True)
class Commit:
    """``Commit A`` — action ``action`` commits."""

    action: Action

    def __str__(self) -> str:
        return f"Commit {self.action}"


@dataclass(frozen=True, slots=True)
class Abort:
    """``Abort A`` — action ``action`` aborts; its effects are undone."""

    action: Action

    def __str__(self) -> str:
        return f"Abort {self.action}"


@dataclass(frozen=True, slots=True)
class Op:
    """``[e A]`` — action ``action`` executes event ``event``."""

    event: Event
    action: Action

    def __str__(self) -> str:
        return f"{self.event} {self.action}"


Entry = Begin | Commit | Abort | Op


class BehavioralHistory:
    """An immutable, well-formed behavioral history.

    Well-formedness (checked on construction):

    * an action's ``Begin`` precedes all its other entries;
    * each action begins, commits, and aborts at most once;
    * no action both commits and aborts;
    * no operation entry follows the action's ``Commit`` or ``Abort``.

    The *order* of ``Begin`` entries is taken as the Lamport begin-time
    order used by static atomicity, and the order of ``Commit`` entries
    as the Lamport commit-time order used by hybrid atomicity
    (Definition 3): representing timestamps positionally keeps the kernel
    purely combinatorial.
    """

    __slots__ = ("_entries", "_begun", "_committed", "_aborted", "_hash", "_events_of")

    def __init__(self, entries: Iterable[Entry] = ()):
        entries = tuple(entries)
        begun: list[Action] = []
        committed: list[Action] = []
        aborted: list[Action] = []
        for index, entry in enumerate(entries):
            action = entry.action
            if isinstance(entry, Begin):
                if action in begun:
                    raise SpecificationError(
                        f"entry {index}: action {action} begins twice"
                    )
                begun.append(action)
                continue
            if action not in begun:
                raise SpecificationError(
                    f"entry {index}: action {action} acts before its Begin"
                )
            if action in committed or action in aborted:
                raise SpecificationError(
                    f"entry {index}: action {action} acts after terminating"
                )
            if isinstance(entry, Commit):
                committed.append(action)
            elif isinstance(entry, Abort):
                aborted.append(action)
        self._entries = entries
        self._begun = tuple(begun)
        self._committed = tuple(committed)
        self._aborted = frozenset(aborted)
        self._hash: int | None = None
        self._events_of: dict[Action, tuple[Event, ...]] | None = None

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> Entry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BehavioralHistory) and self._entries == other._entries

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._entries)
        return self._hash

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BehavioralHistory({list(map(str, self._entries))!r})"

    # -- derived action information ----------------------------------------

    @property
    def entries(self) -> tuple[Entry, ...]:
        return self._entries

    @property
    def begin_order(self) -> tuple[Action, ...]:
        """All actions, in the order of their Begin events."""
        return self._begun

    @property
    def commit_order(self) -> tuple[Action, ...]:
        """Committed actions, in the order of their Commit events."""
        return self._committed

    @property
    def committed(self) -> frozenset[Action]:
        return frozenset(self._committed)

    @property
    def aborted(self) -> frozenset[Action]:
        return self._aborted

    @property
    def active(self) -> frozenset[Action]:
        """Actions that have begun but neither committed nor aborted."""
        return frozenset(self._begun) - self.committed - self._aborted

    @property
    def actions(self) -> frozenset[Action]:
        return frozenset(self._begun)

    def ops(self) -> tuple[Op, ...]:
        """All operation entries, in history order."""
        return tuple(e for e in self._entries if isinstance(e, Op))

    def events_of(self, action: Action) -> tuple[Event, ...]:
        """The events executed by ``action``, in history order.

        Cached on first use: serialization machinery calls this once per
        action per serialization, which would otherwise rescan the whole
        entry list each time.
        """
        if self._events_of is None:
            collected: dict[Action, list[Event]] = {a: [] for a in self._begun}
            for entry in self._entries:
                if isinstance(entry, Op):
                    collected[entry.action].append(entry.event)
            self._events_of = {a: tuple(evs) for a, evs in collected.items()}
        return self._events_of.get(action, ())

    # -- construction helpers ----------------------------------------------

    def append(self, entry: Entry) -> "BehavioralHistory":
        """Return a new history with ``entry`` appended (well-formedness checked)."""
        return BehavioralHistory(self._entries + (entry,))

    def prefix(self, length: int) -> "BehavioralHistory":
        """Return the prefix consisting of the first ``length`` entries."""
        return BehavioralHistory(self._entries[:length])

    def prefixes(self) -> Iterator["BehavioralHistory"]:
        """Yield every proper and improper prefix, shortest first."""
        for length in range(len(self._entries) + 1):
            yield self.prefix(length)

    def commit_all(self, actions: Iterable[Action]) -> "BehavioralHistory":
        """Return a new history with Commit entries appended for ``actions``.

        The actions are committed in the iteration order given, which
        therefore fixes their relative commit-time order.
        """
        history = self
        for action in actions:
            history = history.append(Commit(action))
        return history

    @staticmethod
    def build(*entries: Entry) -> "BehavioralHistory":
        """Construct a history from entries given as positional arguments."""
        return BehavioralHistory(entries)


def run_serially(pairs: Iterable[tuple[Action, Iterable[Event]]]) -> BehavioralHistory:
    """Build the behavioral history in which each action runs serially.

    ``pairs`` is a sequence of ``(action, events)`` pairs; each action
    begins, executes its events, and commits before the next action
    begins.  This is the ``[h A]`` notation from the proof of Theorem 6.
    """
    entries: list[Entry] = []
    for action, events in pairs:
        entries.append(Begin(action))
        for ev in events:
            entries.append(Op(ev, action))
        entries.append(Commit(action))
    return BehavioralHistory(entries)
