"""Bounded enumeration of behavioral histories admitted by a property.

The dependency-relation verifier (Definition 2) and the concurrency
comparison of Figure 1-1 both quantify over "all behavioral histories in
the specification".  This module enumerates that universe exhaustively up
to explicit bounds, using two soundness-preserving canonicalizations:

* **Begins at the front.**  For all three properties, membership and
  closed-subhistory structure depend only on the begin *order* of
  actions, never on where Begin entries sit relative to operations; and
  begin order itself is covered up to action relabeling by fixing the
  order ``A < B < C ...`` and letting the search assign operations to
  actions freely.
* **First-operation order** (label symmetry) — applied only when *no*
  property under enumeration is begin-order sensitive.  For hybrid and
  strong dynamic atomicity, action labels are interchangeable, so the
  search requires that action ``B`` not execute its first operation
  before action ``A`` does, and every history is enumerated exactly once
  up to relabeling.  For **static** atomicity the begin positions of
  actions are semantic (the begins sit at the front in label order), so
  the reduction is disabled: any active action may act at any time —
  including a later-begun action acting before an earlier-begun one,
  the shape of the paper's Theorem 5 witness.

Commit and Abort entries are interleaved freely (their position matters:
for the ``precedes`` order of strong dynamic atomicity directly, and for
all properties through prefix-closure).  Commit/Abort entries for actions
that executed no operations are skipped — such entries are inert for
membership, serialization, and closure alike.

Because each property's specification is prefix-closed, pruning the
search at the first rejected prefix is exact.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.atomicity.properties import LocalAtomicityProperty
from repro.histories.behavioral import (
    Abort,
    Action,
    Begin,
    BehavioralHistory,
    Commit,
    Entry,
    Op,
)
from repro.histories.events import Event
from repro.spec.enumerate import event_alphabet


@dataclass(frozen=True)
class ExplorationBounds:
    """Bounds for behavioral-history enumeration.

    ``max_ops`` bounds the number of operation entries, ``max_actions``
    the number of actions.  ``events`` fixes the event alphabet
    explicitly; when ``None`` it is derived from the data type by
    enumerating legal serial histories of ``alphabet_depth`` events
    (default: ``max_ops``).
    """

    max_ops: int = 3
    max_actions: int = 3
    include_aborts: bool = False
    events: tuple[Event, ...] | None = None
    alphabet_depth: int | None = None

    def resolve_events(self, prop: LocalAtomicityProperty) -> tuple[Event, ...]:
        if self.events is not None:
            return self.events
        depth = self.alphabet_depth if self.alphabet_depth is not None else self.max_ops
        return event_alphabet(prop.datatype, depth, prop.oracle)


def _action_labels(count: int) -> tuple[Action, ...]:
    if count > len(string.ascii_uppercase):
        raise ValueError("at most 26 actions supported")
    return tuple(string.ascii_uppercase[:count])


def behavioral_histories(
    prop: LocalAtomicityProperty,
    bounds: ExplorationBounds,
) -> Iterator[BehavioralHistory]:
    """Yield every admitted history within ``bounds``, up to isomorphism.

    Every yielded history is admitted by ``prop`` (it lies in the largest
    prefix-closed on-line specification for the property) and begins with
    ``Begin`` entries for all ``bounds.max_actions`` actions.
    """
    for history, _flags in multi_property_histories([prop], bounds):
        yield history


def multi_property_histories(
    props: Sequence[LocalAtomicityProperty],
    bounds: ExplorationBounds,
) -> Iterator[tuple[BehavioralHistory, tuple[bool, ...]]]:
    """Enumerate over the union of several properties' specifications.

    Yields ``(history, flags)`` where ``flags[i]`` records whether
    ``props[i]`` admits the history.  A branch is abandoned when *no*
    property admits it — sound because every property's specification is
    prefix-closed.  This is the primitive behind the Figure 1-1
    concurrency comparison, where the same universe must be classified
    under all three properties.
    """
    if not props:
        raise ValueError("need at least one property")
    events = bounds.resolve_events(props[0])
    labels = _action_labels(bounds.max_actions)
    base = BehavioralHistory([Begin(a) for a in labels])
    label_symmetric = not any(prop.begin_order_sensitive for prop in props)

    def candidates(history: BehavioralHistory, op_count: int) -> Iterator[Entry]:
        active = history.active
        acted = {e.action for e in history.ops()}
        if op_count < bounds.max_ops:
            if label_symmetric:
                idle = sorted(a for a in active if a not in acted)
                allowed = sorted(a for a in active if a in acted)
                if idle:
                    allowed.append(idle[0])  # canonical first-op order
            else:
                allowed = sorted(active)
            for action in allowed:
                for event in events:
                    yield Op(event, action)
        for action in sorted(active & acted):
            yield Commit(action)
            if bounds.include_aborts:
                yield Abort(action)

    def search(
        history: BehavioralHistory, flags: tuple[bool, ...], op_count: int
    ) -> Iterator[tuple[BehavioralHistory, tuple[bool, ...]]]:
        yield history, flags
        for entry in candidates(history, op_count):
            extended = history.append(entry)
            new_flags = tuple(
                old and prop.admits(extended) for old, prop in zip(flags, props)
            )
            if any(new_flags):
                yield from search(
                    extended,
                    new_flags,
                    op_count + (1 if isinstance(entry, Op) else 0),
                )

    initial_flags = tuple(prop.admits(base) for prop in props)
    if any(initial_flags):
        yield from search(base, initial_flags, 0)
