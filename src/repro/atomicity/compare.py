"""The concurrency comparison of Figure 1-1.

Figure 1-1 orders the three local atomicity properties by the level of
concurrency they permit — i.e. by containment of their behavioral
specifications:

* hybrid atomicity permits strictly more concurrency than strong dynamic
  atomicity (``Dynamic(T) ⊆ Hybrid(T)``, strictly for nontrivial types);
* hybrid and static atomicity are incomparable;
* static and strong dynamic atomicity are incomparable.

:func:`compare_concurrency` verifies these relations for a concrete data
type by exhaustive enumeration up to a bound, recording a witness history
for every non-containment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.atomicity.explore import ExplorationBounds, multi_property_histories
from repro.atomicity.properties import (
    DynamicAtomicity,
    HybridAtomicity,
    LocalAtomicityProperty,
    StaticAtomicity,
)
from repro.histories.behavioral import BehavioralHistory
from repro.spec.datatype import SerialDataType
from repro.spec.legality import LegalityOracle


@dataclass
class ConcurrencyComparison:
    """The outcome of classifying a bounded history universe.

    ``admitted[p]`` counts histories admitted by property ``p``;
    ``non_containment_witnesses[(p, q)]`` holds a history admitted by
    ``p`` but not by ``q`` when one exists within the bound (so
    ``(p, q) in non_containment_witnesses`` refutes ``p ⊆ q``).
    """

    datatype: str
    bounds: ExplorationBounds
    universe_size: int = 0
    admitted: dict[str, int] = field(default_factory=dict)
    non_containment_witnesses: dict[tuple[str, str], BehavioralHistory] = field(
        default_factory=dict
    )

    def contains(self, first: str, second: str) -> bool:
        """Whether every enumerated history admitted by ``first`` was admitted by ``second``."""
        return (first, second) not in self.non_containment_witnesses

    def incomparable(self, first: str, second: str) -> bool:
        """Whether each property admits a history the other rejects (within bound)."""
        return not self.contains(first, second) and not self.contains(second, first)

    def summary(self) -> str:
        lines = [
            f"Concurrency comparison for {self.datatype} "
            f"(≤{self.bounds.max_ops} ops, ≤{self.bounds.max_actions} actions):",
            f"  histories in union universe: {self.universe_size}",
        ]
        for name, count in sorted(self.admitted.items()):
            lines.append(f"  admitted by {name:>8}: {count}")
        names = sorted(self.admitted)
        for first in names:
            for second in names:
                if first != second:
                    relation = "⊆" if self.contains(first, second) else "⊄"
                    lines.append(f"  {first:>8} {relation} {second}")
        return "\n".join(lines)


def compare_concurrency(
    datatype: SerialDataType,
    bounds: ExplorationBounds | None = None,
    properties: Sequence[LocalAtomicityProperty] | None = None,
) -> ConcurrencyComparison:
    """Classify the bounded behavioral-history universe of ``datatype``.

    Enumerates every history admitted by at least one property and
    records per-property admission counts and non-containment witnesses.
    The defaults compare static, hybrid, and dynamic atomicity.
    """
    bounds = bounds or ExplorationBounds()
    if properties is None:
        oracle = LegalityOracle(datatype)
        properties = (
            StaticAtomicity(datatype, oracle),
            HybridAtomicity(datatype, oracle),
            DynamicAtomicity(datatype, oracle),
        )
    result = ConcurrencyComparison(datatype=datatype.name, bounds=bounds)
    names = [prop.name for prop in properties]
    counts = {name: 0 for name in names}
    for history, flags in multi_property_histories(list(properties), bounds):
        result.universe_size += 1
        for name, admitted in zip(names, flags):
            if admitted:
                counts[name] += 1
        for i, first in enumerate(names):
            for j, second in enumerate(names):
                if i == j or not flags[i] or flags[j]:
                    continue
                result.non_containment_witnesses.setdefault((first, second), history)
    result.admitted = counts
    return result
