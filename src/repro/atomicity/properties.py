"""Membership checkers for ``Static(T)``, ``Hybrid(T)``, and ``Dynamic(T)``.

For a serial specification ``T``, the paper works with the largest
prefix-closed, *on-line* behavioral specification that is static
(respectively hybrid, strong dynamic) atomic.  Membership of a behavioral
history ``H`` in such a specification reduces to:

    for every prefix ``P`` of ``H`` and every way of committing a subset
    of ``P``'s active actions, the resulting history satisfies the bare
    property.

The subset-committing step is exactly what the paper calls a *static*
(resp. *hybrid*, *dynamic*) *serialization* of ``P``, so the checkers
below iterate those serializations (see
:mod:`repro.histories.serialization`) and test legality — plus, for
strong dynamic atomicity (Definition 7), mutual equivalence of all
serializations arising from the same committed set.

Checkers memoize results per history, and exploit prefix closure: a
history is admitted iff its longest proper prefix is admitted and the
full history passes the property check.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import permutations

from repro.histories.behavioral import BehavioralHistory
from repro.histories.events import SerialHistory
from repro.histories.serialization import (
    action_subsets,
    dynamic_serializations,
    hybrid_serializations,
    precedes_pairs,
    relevant_active,
    serialize,
    static_serializations,
    linear_extensions,
)
from repro.spec.datatype import SerialDataType
from repro.spec.legality import LegalityOracle


class LocalAtomicityProperty(ABC):
    """A local atomicity property, bound to one data type.

    Instances answer ``admits(H)``: is ``H`` a member of the largest
    prefix-closed on-line behavioral specification for the property?
    """

    #: Short name used in reports ("static", "hybrid", "dynamic").
    name: str = "abstract"
    #: Whether membership depends on the order of Begin events.  When it
    #: does, action labels are *not* interchangeable (their begin
    #: positions differ), so enumeration symmetry reductions that assume
    #: relabeling-invariance must be disabled.
    begin_order_sensitive: bool = False

    def __init__(self, datatype: SerialDataType, oracle: LegalityOracle | None = None):
        self._dt = datatype
        self.oracle = oracle or LegalityOracle(datatype)
        self._cache: dict[BehavioralHistory, bool] = {}

    @property
    def datatype(self) -> SerialDataType:
        return self._dt

    @abstractmethod
    def check_history(self, history: BehavioralHistory) -> bool:
        """Does ``history`` itself (not its prefixes) satisfy the property?"""

    def admits(self, history: BehavioralHistory) -> bool:
        """Membership in the largest prefix-closed on-line specification."""
        cached = self._cache.get(history)
        if cached is not None:
            return cached
        if len(history) == 0:
            result = True
        else:
            result = self.admits(history.prefix(len(history) - 1)) and self.check_history(
                history
            )
        self._cache[history] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} for {self._dt.name}>"


class StaticAtomicity(LocalAtomicityProperty):
    """Committed actions serializable in Begin-event order (Definition 3).

    This is the property enforced by timestamp-based mechanisms such as
    Reed's multiversion scheme and the Swallow storage system: each
    action is ordered once and for all when it begins.
    """

    name = "static"
    begin_order_sensitive = True

    def check_history(self, history: BehavioralHistory) -> bool:
        return all(self.oracle.is_legal(s) for s in static_serializations(history))


class HybridAtomicity(LocalAtomicityProperty):
    """Committed actions serializable in Commit-event order (Definition 3).

    This is the property enforced by hybrid mechanisms: actions are
    ordered by commit-time timestamps, with local synchronization (e.g.
    short-term locks) keeping active actions consistent.
    """

    name = "hybrid"

    def check_history(self, history: BehavioralHistory) -> bool:
        return all(self.oracle.is_legal(s) for s in hybrid_serializations(history))


class DynamicAtomicity(LocalAtomicityProperty):
    """Strong dynamic atomicity (Definition 7).

    A history qualifies when it is serializable in *every* order
    consistent with the partial ``precedes`` order and all such
    serializations are equivalent.  This is the property two-phase
    locking mechanisms (Argus, TABS) enforce: until an action commits,
    its order relative to concurrent actions remains undetermined, so
    every consistent order must work equally well.
    """

    name = "dynamic"

    def check_history(self, history: BehavioralHistory) -> bool:
        pairs = precedes_pairs(history)
        committed = history.committed
        for subset in action_subsets(relevant_active(history)):
            nodes = sorted(committed | set(subset))
            reference: SerialHistory | None = None
            for order in linear_extensions(nodes, pairs):
                serial = serialize(history, order)
                if not self.oracle.is_legal(serial):
                    return False
                if reference is None:
                    reference = serial
                elif not self.oracle.equivalent(reference, serial):
                    return False
        return True


def is_serializable_in_some_order(
    oracle: LegalityOracle, history: BehavioralHistory
) -> bool:
    """Is the committed subhistory serializable in *some* total order?

    This is the bare atomicity requirement of Section 3.1, with no
    constraint tying the order to Begin or Commit events.  It brute-forces
    permutations of committed actions, which is fine at kernel scale.
    """
    committed = sorted(history.committed)
    return any(
        oracle.is_legal(serialize(history, order)) for order in permutations(committed)
    )


def is_atomic(oracle: LegalityOracle, history: BehavioralHistory) -> bool:
    """Alias of :func:`is_serializable_in_some_order` matching the paper's term."""
    return is_serializable_in_some_order(oracle, history)
