"""Local atomicity properties and their membership checkers.

Weihl's three local atomicity properties classify the pessimistic
atomicity mechanisms the paper compares:

* **static atomicity** — committed actions serializable in the order of
  their Begin events — generalizes timestamping schemes (Reed);
* **hybrid atomicity** — serializable in the order of Commit events —
  generalizes hybrid timestamp/locking schemes;
* **strong dynamic atomicity** — serializable in *every* order consistent
  with the ``precedes`` order, all serializations equivalent —
  generalizes two-phase locking.

Each property is realized here as a checker for membership in the
largest prefix-closed, on-line behavioral specification satisfying the
property (``Static(T)``, ``Hybrid(T)``, ``Dynamic(T)``).
"""

from repro.atomicity.properties import (
    DynamicAtomicity,
    HybridAtomicity,
    LocalAtomicityProperty,
    StaticAtomicity,
    is_atomic,
    is_serializable_in_some_order,
)
from repro.atomicity.explore import behavioral_histories, ExplorationBounds
from repro.atomicity.compare import ConcurrencyComparison, compare_concurrency

__all__ = [
    "LocalAtomicityProperty",
    "StaticAtomicity",
    "HybridAtomicity",
    "DynamicAtomicity",
    "is_atomic",
    "is_serializable_in_some_order",
    "behavioral_histories",
    "ExplorationBounds",
    "ConcurrencyComparison",
    "compare_concurrency",
]
