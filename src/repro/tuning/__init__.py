"""Adaptive quorum tuning under live traffic (see ``docs/TUNING.md``).

Three pieces close the loop the paper's quorum spectrum opens:

* :class:`~repro.tuning.mix.MixObserver` — windowed per-object
  read/write-mix counters fed by the front-ends' ``op_observer`` hook;
* :mod:`repro.tuning.cost` — a message/latency cost model over the
  kernel-enumerated space of *legal* threshold assignments, with an
  availability floor as constraint;
* :class:`~repro.tuning.tuner.QuorumTuner` — the online controller
  that reconfigures an object (drain-and-prime epoch transaction) when
  the predicted saving clears its hysteresis threshold.
"""

from repro.tuning.cost import (
    ScoredCandidate,
    assignment_messages,
    choice_availability,
    choice_messages,
    choice_round_trips,
    embed_choice,
    legal_candidates,
    score_candidates,
)
from repro.tuning.mix import MixObserver
from repro.tuning.tuner import QuorumTuner, TunerConfig

__all__ = [
    "MixObserver",
    "QuorumTuner",
    "ScoredCandidate",
    "TunerConfig",
    "assignment_messages",
    "choice_availability",
    "choice_messages",
    "choice_round_trips",
    "embed_choice",
    "legal_candidates",
    "score_candidates",
]
