"""The online quorum tuner: observe, score, reconfigure.

Closes the loop the paper leaves open: quorum consensus admits a whole
spectrum of legal assignments per type (Thms 6/10), and which point is
*cheapest* depends on the live operation mix.  The
:class:`QuorumTuner` watches each object's windowed mix through a
:class:`~repro.tuning.mix.MixObserver`, prices every legal threshold
layout over the object's replica set with the
:mod:`~repro.tuning.cost` model, and — when the predicted saving clears
a hysteresis threshold — installs the winner through the
drain-and-prime epoch transaction in
:mod:`repro.replication.reconfig`.  Safety is therefore not the tuner's
problem: every candidate is legality-checked against the dependency
relation before it is ever scored, and the switch itself is the
provably view-preserving hand-over, audited across epochs by the
``reconfig-epoch`` monitor.

Determinism: the tuner evaluates only from the workload generator's
``on_transaction_start`` hook — a schedule that is identical across
``--jobs`` counts and serial/batched RPC modes (it advances per *new*
transaction, never per retry) — and all scoring/tie-breaking is
deterministic, so tuned runs fingerprint byte-identically across the
whole determinism envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import UnavailableError
from repro.quorum.assignment import QuorumAssignment
from repro.resilience.policy import read_only_operations
from repro.tuning.cost import (
    assignment_messages,
    legal_candidates,
    score_candidates,
)
from repro.tuning.mix import MixObserver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.replication.cluster import Cluster


@dataclass(frozen=True)
class TunerConfig:
    """Knobs of the online tuner (all deterministic).

    Attributes:
        window: mix-observer bucket size; the scored mix reflects the
            last ``window``–``2 × window`` operations per object.
        evaluate_every: transactions between tuning evaluations (the
            cadence of the ``on_transaction_start`` hook).
        hysteresis: minimum *fractional* predicted message saving before
            a reconfiguration fires — e.g. ``0.1`` demands the candidate
            beat the incumbent by ≥10%.  This is what keeps the tuner
            from oscillating on a balanced mix: after a switch the
            incumbent is the previous winner, and the reverse move must
            now clear the same bar from the other side.
        p_up: independent per-site up-probability of the availability
            model.
        availability_floor: worst-operation availability a candidate
            must clear (a constraint, never traded against messages).
        min_samples: windowed operations an object needs before the
            tuner will score it at all (an empty window prices nothing).
    """

    window: int = 192
    evaluate_every: int = 32
    hysteresis: float = 0.10
    p_up: float = 0.9
    availability_floor: float = 0.0
    min_samples: int = 24


class QuorumTuner:
    """Adaptive quorum tuning for one cluster.

    Construction wires a :class:`~repro.tuning.mix.MixObserver` into
    every front-end; drive the tuner by installing
    :meth:`on_transaction_start` as the workload generator's
    transaction hook (or call :meth:`maybe_tune` at your own cadence).
    Only objects whose concurrency-control scheme carries a dependency
    ``relation`` (the hybrid scheme) are tunable — the relation is what
    makes candidate legality *provable*; everything else keeps its
    static assignment.
    """

    def __init__(
        self,
        cluster: "Cluster",
        *,
        config: TunerConfig | None = None,
        registry: "MetricsRegistry | None" = None,
    ):
        self.cluster = cluster
        self.config = config if config is not None else TunerConfig()
        self.registry = registry
        read_ops = {
            name: read_only_operations(obj.datatype)
            for name, obj in cluster.tm.objects.items()
        }
        self.observer = MixObserver(
            read_ops, window=self.config.window, registry=registry
        )
        self.observer.attach(cluster.frontends)
        #: (object name, new epoch, describe()) per performed switch.
        self.switches: list[tuple[str, int, str]] = []
        self._candidates: dict[str, tuple] = {}

    # -- candidate spaces --------------------------------------------------

    def tunable_objects(self) -> tuple[str, ...]:
        """Names of objects the tuner may reconfigure, sorted."""
        names = []
        for name, obj in self.cluster.tm.objects.items():
            if getattr(obj.cc, "relation", None) is not None:
                names.append(name)
        return tuple(sorted(names))

    def _replicas(self, name: str) -> tuple[int, ...]:
        placement = self.cluster.placement
        if placement is not None and name in placement.object_names():
            return tuple(placement.replicas(name))
        return tuple(range(self.cluster.n_sites))

    def _candidate_space(self, name: str):
        cached = self._candidates.get(name)
        if cached is None:
            obj = self.cluster.tm.object(name)
            cached = legal_candidates(
                obj.cc.relation,
                self._replicas(name),
                self.cluster.n_sites,
                obj.datatype.operations(),
            )
            self._candidates[name] = cached
        return cached

    # -- the tuning loop ---------------------------------------------------

    def on_transaction_start(self, index: int) -> None:
        """Workload hook: evaluate every ``evaluate_every`` transactions.

        Fires on the generator's deterministic new-transaction schedule,
        so tuning decisions land at identical points across job counts
        and RPC modes.
        """
        if index > 0 and index % self.config.evaluate_every == 0:
            self.maybe_tune()

    def maybe_tune(self) -> int:
        """One evaluation pass; returns how many objects were switched."""
        self._count("tuning.evaluations")
        switched = 0
        for name in self.tunable_objects():
            if self._tune_object(name):
                switched += 1
        return switched

    def _tune_object(self, name: str) -> bool:
        cfg = self.config
        if self.observer.samples(name) < cfg.min_samples:
            return False
        weights = self.observer.weights(name)
        if not weights:
            return False
        obj = self.cluster.tm.object(name)
        incumbent = assignment_messages(obj.assignment, weights)
        scored = score_candidates(
            self._candidate_space(name),
            weights,
            p_up=cfg.p_up,
            availability_floor=cfg.availability_floor,
        )
        if not scored:
            return False
        best, assignment = scored[0]
        if best.messages > incumbent * (1.0 - cfg.hysteresis):
            return False
        return self._switch(name, assignment, best)

    def _switch(self, name: str, assignment: QuorumAssignment, best) -> bool:
        try:
            changed = self.cluster.reconfigure(
                name, assignment, registry=self.registry
            )
        except UnavailableError:
            # The hand-over could not drain or prime a transversal right
            # now; the old assignment is untouched and a later
            # evaluation simply retries.  The reconfig layer already
            # counted the abort.
            return False
        if not changed:
            return False
        obj = self.cluster.tm.object(name)
        self.switches.append((name, obj.epoch, best.choice.describe()))
        self._count("tuning.switches")
        return True

    def _count(self, counter: str) -> None:
        if self.registry is not None:
            self.registry.counter(counter).inc()
