"""The tuner's cost model over legal threshold assignments.

Candidates come from the kernel's own enumeration
(:func:`~repro.quorum.search.valid_threshold_choices` over the object's
dependency relation), so every scored point is *provably legal* for the
object's type — the tuner never invents quorums, it only walks the
``1/n`` ↔ ``n/1`` spectrum Theorems 6 and 10 expose.  Each candidate is
scored under the observed operation mix:

* **messages/op** — an initial quorum of ``k_i`` costs ``k_i`` request/
  reply exchanges and the common-case (``Ok``) final quorum ``k_f``
  more, so a candidate's expected message cost is
  ``Σ_op w(op) · (k_i(op) + k_f(op, Ok))``.  Exceptional response kinds
  (the PROM's ``Read();Disabled()``) are deliberately excluded: they
  price the rare path, and charging it to every operation would erase
  precisely the asymmetry (single-site ``Read();Ok()``) the paper's
  PROM example exists to demonstrate.
* **latency (round trips)** — quorum phases overlap their probes on the
  batched RPC path, so latency counts *phases*, not messages: one round
  trip for the initial quorum plus one more when the common-case final
  is non-empty.  Used to break message-count ties toward fewer phases.
* **availability floor** — a *constraint*, not an objective: per
  operation the joint initial+final availability under independent site
  up-probability ``p`` is one binomial tail at the larger threshold
  (:func:`~repro.quorum.search.needed_thresholds`), and a candidate is
  admissible only when the worst operation clears the floor.

Candidates are materialized over the object's *replica set* as
:class:`~repro.quorum.coterie.SubsetThresholdCoterie` layouts
(:func:`embed_choice`), then re-checked against the dependency relation
with :func:`~repro.quorum.constraints.satisfies` — belt and braces: the
threshold inequalities already imply intersection, and the explicit
check keeps the guarantee independent of the enumeration's correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.dependency.relation import DependencyRelation
from repro.quorum import constraints
from repro.quorum.assignment import OperationQuorums, QuorumAssignment
from repro.quorum.availability import binomial_tail
from repro.quorum.coterie import (
    Coterie,
    EmptyCoterie,
    SubsetThresholdCoterie,
    ThresholdCoterie,
)
from repro.quorum.search import (
    ThresholdChoice,
    needed_thresholds,
    valid_threshold_choices,
)

#: The response kind whose final quorum prices the common case.
COMMON_KIND = "Ok"


@dataclass(frozen=True)
class ScoredCandidate:
    """One legal threshold choice with its scores under a mix."""

    choice: ThresholdChoice
    #: Expected messages per operation under the mix.
    messages: float
    #: Expected quorum round trips per operation under the mix.
    round_trips: float
    #: Worst-case per-operation availability at the model's ``p_up``.
    availability: float

    def sort_key(self) -> tuple:
        """Deterministic preference order: fewer messages, then fewer
        round trips, then higher availability, then a stable textual
        tie-break so equal-cost candidates resolve identically across
        runs, job counts, and RPC modes."""
        return (
            self.messages,
            self.round_trips,
            -self.availability,
            self.choice.describe(),
        )


def choice_messages(
    choice: ThresholdChoice, weights: Mapping[str, float]
) -> float:
    """Expected messages/op of a threshold choice under an operation mix."""
    total = 0.0
    for op, weight in weights.items():
        total += weight * (
            choice.initial_of(op) + choice.final_of(op, COMMON_KIND)
        )
    return total


def choice_round_trips(
    choice: ThresholdChoice, weights: Mapping[str, float]
) -> float:
    """Expected quorum phases/op (batched probes overlap within a phase)."""
    total = 0.0
    for op, weight in weights.items():
        phases = (1 if choice.initial_of(op) > 0 else 0) + (
            1 if choice.final_of(op, COMMON_KIND) > 0 else 0
        )
        total += weight * phases
    return total


def choice_availability(choice: ThresholdChoice, p_up: float) -> float:
    """Worst-case per-operation availability of a threshold choice."""
    worst = 1.0
    for _op, needed in needed_thresholds(choice):
        avail = 1.0 if needed == 0 else binomial_tail(choice.n_sites, needed, p_up)
        worst = min(worst, avail)
    return worst


def _embed_coterie(
    threshold: int, replicas: frozenset[int], n_sites: int
) -> Coterie:
    if threshold == 0:
        return EmptyCoterie(n_sites)
    if len(replicas) == n_sites:
        # Full replication: a plain threshold coterie is the same quorum
        # family with cheaper membership checks — and byte-identical
        # ``describe()`` output to the pre-keyspace layouts.
        return ThresholdCoterie(n_sites, threshold)
    return SubsetThresholdCoterie(n_sites, replicas, threshold)


def embed_choice(
    choice: ThresholdChoice, replicas: Sequence[int], n_sites: int
) -> QuorumAssignment:
    """Materialize a choice over a replica subset of the site universe.

    ``choice.n_sites`` must equal ``len(replicas)`` — its thresholds are
    counts *of replicas* — while the returned assignment lives in the
    full ``n_sites`` universe, with every coterie a
    :class:`SubsetThresholdCoterie` over the replica set (mirroring how
    :meth:`~repro.replication.keyspace.ObjectSpec.compile_assignment`
    compiles placements).
    """
    members = frozenset(replicas)
    if choice.n_sites != len(members):
        raise ValueError(
            f"choice is over {choice.n_sites} replicas, got {len(members)}"
        )
    finals = dict(choice.final)
    operations = {}
    overrides = {}
    for op, k_init in choice.initial:
        kinds = {kind: k for (name, kind), k in finals.items() if name == op}
        default = max(kinds.values(), default=0)
        operations[op] = OperationQuorums(
            initial=_embed_coterie(k_init, members, n_sites),
            final=_embed_coterie(default, members, n_sites),
        )
        for kind, k in kinds.items():
            if k != default:
                overrides[(op, kind)] = _embed_coterie(k, members, n_sites)
    return QuorumAssignment(n_sites, operations, overrides)


def legal_candidates(
    relation: DependencyRelation,
    replicas: Sequence[int],
    n_sites: int,
    operations: Sequence[str],
) -> tuple[tuple[ThresholdChoice, QuorumAssignment], ...]:
    """Every legal threshold layout over the replica set, materialized.

    Enumeration runs over ``len(replicas)`` virtual sites (thresholds
    count replicas); each choice is embedded into the full universe and
    gated through :func:`~repro.quorum.constraints.satisfies`.  The
    result is deterministic and computed once per object — candidate
    spaces depend only on the type's relation and the placement, not on
    the observed mix.
    """
    members = frozenset(replicas)
    out = []
    for choice in valid_threshold_choices(relation, len(members), operations):
        if any(k == 0 for _op, k in choice.initial):
            continue  # an operation that can never execute is not a layout
        assignment = embed_choice(choice, members, n_sites)
        if constraints.satisfies(assignment, relation):
            out.append((choice, assignment))
    return tuple(out)


def score_candidates(
    candidates: Sequence[tuple[ThresholdChoice, QuorumAssignment]],
    weights: Mapping[str, float],
    *,
    p_up: float = 0.9,
    availability_floor: float = 0.0,
) -> list[tuple[ScoredCandidate, QuorumAssignment]]:
    """Score candidates under a mix, dropping floor violations.

    Returns ``(score, assignment)`` pairs sorted best-first by
    :meth:`ScoredCandidate.sort_key`.
    """
    scored = []
    for choice, assignment in candidates:
        availability = choice_availability(choice, p_up)
        if availability < availability_floor:
            continue
        scored.append(
            (
                ScoredCandidate(
                    choice=choice,
                    messages=choice_messages(choice, weights),
                    round_trips=choice_round_trips(choice, weights),
                    availability=availability,
                ),
                assignment,
            )
        )
    scored.sort(key=lambda pair: pair[0].sort_key())
    return scored


def assignment_messages(
    assignment: QuorumAssignment, weights: Mapping[str, float]
) -> float:
    """Expected messages/op of an *installed* assignment under a mix.

    The same model as :func:`choice_messages`, read off the assignment's
    smallest quorum sizes — used to price the incumbent an object is
    currently running so the tuner's hysteresis compares like with like.
    """
    total = 0.0
    for op, weight in weights.items():
        initial = assignment.initial(op).smallest_quorum_size() or 0
        final = assignment.final(op, COMMON_KIND).smallest_quorum_size() or 0
        total += weight * (initial + final)
    return total
