"""Windowed per-object read/write-mix observation.

The tuner's input side: a :class:`MixObserver` hangs off every
front-end's ``op_observer`` hook and maintains, per object, a windowed
count of operations by name plus cumulative read/write totals.  The
window uses the streaming audit pipeline's two-bucket rotation (PR 7):
a *current* bucket fills until it holds ``window`` operations, then
becomes the *previous* bucket and a fresh one starts — so the reported
mix always reflects between ``window`` and ``2 × window`` recent
operations, with O(operations per object) state and no per-op
allocation beyond a dict increment.

Classification into reads and writes comes from the same
:func:`~repro.resilience.policy.read_only_operations` analysis the
degraded-read fallback trusts: an operation is a *read* when every one
of its events is state-preserving (legal to drop from any history), a
*write* otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.replication.frontend import FrontEnd


class MixObserver:
    """Streaming per-object operation-mix counters.

    Args:
        read_ops: object name → the operation names classified read-only
            (from :func:`~repro.resilience.policy.read_only_operations`
            on the object's datatype).  Objects not in the mapping are
            still counted; all their operations score as writes.
        window: bucket size of the two-bucket rotation; the windowed
            mix spans the last ``window``–``2 × window`` operations.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, every observation bumps the cumulative
            ``mix.reads`` / ``mix.writes`` counters.
    """

    def __init__(
        self,
        read_ops: Mapping[str, frozenset[str]],
        *,
        window: int = 192,
        registry: "MetricsRegistry | None" = None,
    ):
        if window <= 0:
            raise ValueError("mix window must be positive")
        self.window = window
        self._read_ops = dict(read_ops)
        self._current: dict[str, dict[str, int]] = {}
        self._previous: dict[str, dict[str, int]] = {}
        self._current_total: dict[str, int] = {}
        self._reads: dict[str, int] = {}
        self._writes: dict[str, int] = {}
        self._registry = registry

    # -- feeding -----------------------------------------------------------

    def attach(self, frontends: "Iterable[FrontEnd]") -> None:
        """Install :meth:`observe` as each front-end's ``op_observer``."""
        for frontend in frontends:
            frontend.op_observer = self.observe

    def observe(self, object_name: str, op_name: str) -> None:
        """Count one executed operation (the ``op_observer`` callable)."""
        bucket = self._current.get(object_name)
        if bucket is None:
            bucket = self._current[object_name] = {}
            self._current_total[object_name] = 0
        bucket[op_name] = bucket.get(op_name, 0) + 1
        total = self._current_total[object_name] + 1
        if op_name in self._read_ops.get(object_name, ()):
            self._reads[object_name] = self._reads.get(object_name, 0) + 1
            if self._registry is not None:
                self._registry.counter("mix.reads").inc()
        else:
            self._writes[object_name] = self._writes.get(object_name, 0) + 1
            if self._registry is not None:
                self._registry.counter("mix.writes").inc()
        if total >= self.window:
            self._previous[object_name] = bucket
            self._current[object_name] = {}
            self._current_total[object_name] = 0
        else:
            self._current_total[object_name] = total

    # -- reading -----------------------------------------------------------

    def object_names(self) -> tuple[str, ...]:
        """Every object observed so far, sorted."""
        names = set(self._current) | set(self._previous)
        return tuple(sorted(names))

    def samples(self, object_name: str) -> int:
        """Operations currently inside the window (both buckets)."""
        return self._current_total.get(object_name, 0) + sum(
            self._previous.get(object_name, {}).values()
        )

    def weights(self, object_name: str) -> dict[str, float]:
        """The windowed mix as per-operation fractions summing to 1.

        Empty when the object has no windowed samples yet.
        """
        counts: dict[str, int] = dict(self._previous.get(object_name, {}))
        for op, count in self._current.get(object_name, {}).items():
            counts[op] = counts.get(op, 0) + count
        total = sum(counts.values())
        if total == 0:
            return {}
        return {op: count / total for op, count in sorted(counts.items())}

    def counts(self, object_name: str) -> tuple[int, int]:
        """Cumulative ``(reads, writes)`` since attachment."""
        return (
            self._reads.get(object_name, 0),
            self._writes.get(object_name, 0),
        )

    def read_fraction(self, object_name: str) -> float | None:
        """Cumulative read fraction, or ``None`` before any operation."""
        reads, writes = self.counts(object_name)
        total = reads + writes
        if total == 0:
            return None
        return reads / total

    def state_cells(self) -> int:
        """Bounded-memory accounting hook (PR-7 convention): the number
        of live counter cells across both buckets and the totals."""
        cells = 0
        for buckets in (self._current, self._previous):
            for counts in buckets.values():
                cells += len(counts)
        return cells + len(self._reads) + len(self._writes)
