"""repro.scenarios — declarative workload scenarios over the simulator.

The pluggable workload framework (see ``docs/SCENARIOS.md``):

* :class:`ScenarioWorkload` — the user-supplied workload class
  contract (``init()``/``run()``), pgWorkload-style;
* :class:`ScenarioSpec` + :class:`MixSpec`/:class:`SkewSpec`/
  :class:`ArrivalSpec` — frozen declarative traffic shapes;
* :data:`SCENARIOS` — the frozen catalog (read-dominant, write-heavy,
  hot-key-contention, bursty-flash-crowd, long-transaction, plus the
  byte-identity ``default``), each with a ``doc_ref`` anchor;
* :func:`run_scenario` — one audited run, crossable with the chaos
  profiles and the three mechanisms (:data:`MECHANISMS`);
* the seeded samplers (:func:`zipf_weights`, :func:`hot_key_ranks`,
  :func:`poisson_arrivals`, :func:`bursty_arrivals`).

``python -m repro scenario`` is the CLI entry point;
``benchmarks/bench_scenario_matrix.py`` sweeps the full
scenario × chaos-profile × mechanism matrix.
"""

from repro.scenarios.catalog import SCENARIOS, scenario
from repro.scenarios.runner import (
    MECHANISMS,
    build_scenario,
    compile_arrivals,
    compile_mix,
    run_scenario,
    scenario_keyspace,
)
from repro.scenarios.sampler import (
    bursty_arrivals,
    hot_key_ranks,
    poisson_arrivals,
    zipf_weights,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    MixSpec,
    MixWorkload,
    ScenarioSpec,
    ScenarioWorkload,
    SkewSpec,
)

__all__ = [
    "ArrivalSpec",
    "MECHANISMS",
    "MixSpec",
    "MixWorkload",
    "SCENARIOS",
    "ScenarioSpec",
    "ScenarioWorkload",
    "SkewSpec",
    "build_scenario",
    "bursty_arrivals",
    "compile_arrivals",
    "compile_mix",
    "hot_key_ranks",
    "poisson_arrivals",
    "run_scenario",
    "scenario",
    "scenario_keyspace",
    "zipf_weights",
]
