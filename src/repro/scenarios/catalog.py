"""The frozen scenario catalog — one spec per named traffic shape.

Each entry is a :class:`~repro.scenarios.spec.ScenarioSpec` with a
``doc_ref`` anchor into ``docs/SCENARIOS.md``; ``tests/test_docs.py``
fails the build when an anchor goes stale or a catalog entry is missing
from the doc's reference table, and ``tests/test_scenarios.py`` pins
the ``default`` entry byte-identical to the legacy workload.  The
catalog is the row axis of ``benchmarks/bench_scenario_matrix.py``,
crossed there with the chaos profiles and the three atomicity
mechanisms.

Changing an existing entry re-rolls every published fingerprint built
on it — add new scenarios instead of mutating old ones.
"""

from __future__ import annotations

from repro.scenarios.spec import ArrivalSpec, MixSpec, ScenarioSpec, SkewSpec

__all__ = ["SCENARIOS", "scenario"]

_DOC = "docs/SCENARIOS.md"


def _catalog(*specs: ScenarioSpec) -> dict[str, ScenarioSpec]:
    return {spec.name: spec for spec in specs}


#: Name → frozen spec.  ``default`` is the legacy workload expressed as
#: a scenario (uniform mix, no skew, closed loop, 3 ops × 4 deep) and
#: is test-enforced byte-identical to it; the rest stress one axis each.
SCENARIOS: dict[str, ScenarioSpec] = _catalog(
    ScenarioSpec(
        name="default",
        doc_ref=f"{_DOC}#default",
        description="The legacy closed-loop uniform workload, as a scenario: "
        "the byte-identity anchor every other scenario deviates from.",
        mix=MixSpec.uniform(),
        skew=SkewSpec.uniform(),
        arrival=ArrivalSpec.closed(),
        ops_per_transaction=3,
        concurrency=4,
        objects=1,
        transactions=12,
    ),
    ScenarioSpec(
        name="read-dominant",
        doc_ref=f"{_DOC}#read-dominant",
        description="Reads 9× writes over a mixed keyspace — the regime "
        "where small read quorums (and the paper's availability "
        "trade-off) pay off.",
        mix=MixSpec.read_dominant(9.0),
        skew=SkewSpec.uniform(),
        arrival=ArrivalSpec.closed(),
        objects=6,
        transactions=16,
    ),
    ScenarioSpec(
        name="write-heavy",
        doc_ref=f"{_DOC}#write-heavy",
        description="Writes 4× reads — final-quorum pressure, the regime "
        "blocking commit protocols feel first.",
        mix=MixSpec.write_heavy(4.0),
        skew=SkewSpec.uniform(),
        arrival=ArrivalSpec.closed(),
        objects=6,
        transactions=16,
    ),
    ScenarioSpec(
        name="hot-key-contention",
        doc_ref=f"{_DOC}#hot-key-contention",
        description="Zipf s=1.2 over 8 objects at double depth: most "
        "traffic collides on a couple of hot keys, so conflict "
        "handling — waits, wounds, timestamp aborts — dominates.",
        mix=MixSpec.uniform(),
        skew=SkewSpec.zipf(1.2),
        arrival=ArrivalSpec.closed(),
        concurrency=8,
        objects=8,
        transactions=20,
    ),
    ScenarioSpec(
        name="bursty-flash-crowd",
        doc_ref=f"{_DOC}#bursty-flash-crowd",
        description="Open-loop arrivals alternating calm traffic with "
        "4-transaction crowds at 20× the calm rate — admission backlog "
        "and recovery-after-burst behavior.",
        mix=MixSpec.uniform(),
        skew=SkewSpec.uniform(),
        arrival=ArrivalSpec.bursty(
            rate=0.5, burst_rate=10.0, burst_length=4, cycle=8
        ),
        objects=6,
        transactions=24,
    ),
    ScenarioSpec(
        name="long-transaction",
        doc_ref=f"{_DOC}#long-transaction",
        description="10-operation transactions at low depth under open-loop "
        "Poisson arrivals: long lock/dependency hold times, the regime "
        "where deadlock policy and multiversion timestamps diverge.",
        mix=MixSpec.uniform(),
        skew=SkewSpec.uniform(),
        arrival=ArrivalSpec.poisson(rate=1.0),
        ops_per_transaction=10,
        concurrency=3,
        objects=6,
        transactions=16,
    ),
)


def scenario(name: str) -> ScenarioSpec:
    """Look up a catalog scenario by name (with a helpful error)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (choose from "
            f"{', '.join(sorted(SCENARIOS))})"
        ) from None
