"""Declarative scenario specifications and the workload class contract.

A :class:`ScenarioSpec` is a frozen, validated description of a traffic
shape — what operations a transaction contains, which keys it touches,
when transactions arrive, and how many run at once.  Specs are data,
not behavior: :mod:`repro.scenarios.runner` compiles a spec onto the
existing :class:`~repro.sim.workload.WorkloadGenerator` hooks, and the
frozen :data:`~repro.scenarios.catalog.SCENARIOS` catalog pins one spec
per named scenario with a ``doc_ref`` anchor into ``docs/SCENARIOS.md``
(drift between catalog and doc is test-enforced).

The escape hatch is :class:`ScenarioWorkload`: any object satisfying
its ``init()``/``run()`` contract can replace the compiled mix sampler
entirely, pgWorkload-style, while still riding the driver's
concurrency, retry, and arrival machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "ArrivalSpec",
    "MixSpec",
    "MixWorkload",
    "ScenarioSpec",
    "ScenarioWorkload",
    "SkewSpec",
]


@dataclass(frozen=True)
class MixSpec:
    """Operation-mix shape: read/write balance plus per-op multipliers.

    ``read_weight`` and ``write_weight`` scale every read-only and
    state-changing operation respectively (classified mechanically by
    :func:`~repro.resilience.policy.read_only_operations`, so a data
    type with no read-only operations — the FIFO queue — simply sees
    ``write_weight`` everywhere).  ``op_weights`` multiplies named
    operations on top of that, e.g. ``(("Enq", 3.0),)`` to skew a queue
    toward producers.  The default (all ones) compiles to the legacy
    uniform mix exactly.
    """

    read_weight: float = 1.0
    write_weight: float = 1.0
    op_weights: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.read_weight <= 0 or self.write_weight <= 0:
            raise ValueError(
                "mix weights must be positive, got "
                f"read={self.read_weight} write={self.write_weight}"
            )
        for op, weight in self.op_weights:
            if weight <= 0:
                raise ValueError(f"op weight for {op!r} must be positive")

    @staticmethod
    def uniform() -> "MixSpec":
        """Every invocation equally likely (the legacy default)."""
        return MixSpec()

    @staticmethod
    def read_dominant(ratio: float = 9.0) -> "MixSpec":
        """Reads ``ratio`` times more likely than writes."""
        return MixSpec(read_weight=ratio, write_weight=1.0)

    @staticmethod
    def write_heavy(ratio: float = 4.0) -> "MixSpec":
        """Writes ``ratio`` times more likely than reads."""
        return MixSpec(read_weight=1.0, write_weight=ratio)

    def multiplier(self, op: str, read_only: bool) -> float:
        """The compiled weight factor for operation ``op``."""
        factor = self.read_weight if read_only else self.write_weight
        for name, weight in self.op_weights:
            if name == op:
                factor *= weight
        return factor


@dataclass(frozen=True)
class SkewSpec:
    """Key-skew shape: a zipf exponent over the keyspace's objects.

    ``s = 0`` (the default) is uniform; larger ``s`` concentrates
    traffic on a few hot keys.  *Which* keys are hot comes from a
    seeded shuffle (:func:`~repro.scenarios.sampler.hot_key_ranks`), so
    the hot set varies per seed but is reproducible everywhere.
    """

    s: float = 0.0

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError(f"zipf exponent must be non-negative, got {self.s}")

    @staticmethod
    def uniform() -> "SkewSpec":
        return SkewSpec(s=0.0)

    @staticmethod
    def zipf(s: float) -> "SkewSpec":
        return SkewSpec(s=s)


@dataclass(frozen=True)
class ArrivalSpec:
    """Arrival-process shape: closed loop, open-loop Poisson, or bursty.

    * ``"closed"`` — the legacy fixed-pool loop: a finished transaction
      is immediately replaced, ``concurrency`` deep (no schedule);
    * ``"poisson"`` — open loop at ``rate`` transactions per simulated
      time unit (:func:`~repro.scenarios.sampler.poisson_arrivals`),
      with ``concurrency`` acting as an admission-backlog cap;
    * ``"bursty"`` — open loop alternating calm ``rate`` traffic with
      ``burst_length``-arrival crowds at ``burst_rate`` every ``cycle``
      arrivals (:func:`~repro.scenarios.sampler.bursty_arrivals`).
    """

    kind: str = "closed"
    rate: float | None = None
    burst_rate: float | None = None
    burst_length: int | None = None
    cycle: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("closed", "poisson", "bursty"):
            raise ValueError(
                f"unknown arrival kind {self.kind!r} "
                "(use 'closed', 'poisson', or 'bursty')"
            )
        if self.kind == "closed":
            if self.rate is not None:
                raise ValueError("a closed-loop arrival spec takes no rate")
            return
        if self.rate is None or self.rate <= 0:
            raise ValueError(f"{self.kind} arrivals need a positive rate")
        if self.kind == "bursty":
            if (
                self.burst_rate is None
                or self.burst_length is None
                or self.cycle is None
            ):
                raise ValueError(
                    "bursty arrivals need burst_rate, burst_length, and cycle"
                )

    @staticmethod
    def closed() -> "ArrivalSpec":
        """The legacy closed-loop pool (no arrival schedule)."""
        return ArrivalSpec(kind="closed")

    @staticmethod
    def poisson(rate: float) -> "ArrivalSpec":
        """Open-loop Poisson arrivals at ``rate`` per simulated time unit."""
        return ArrivalSpec(kind="poisson", rate=rate)

    @staticmethod
    def bursty(
        rate: float, burst_rate: float, burst_length: int, cycle: int
    ) -> "ArrivalSpec":
        """Calm ``rate`` traffic with periodic ``burst_rate`` crowds."""
        return ArrivalSpec(
            kind="bursty",
            rate=rate,
            burst_rate=burst_rate,
            burst_length=burst_length,
            cycle=cycle,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One frozen scenario: mix × skew × arrivals × concurrency shape.

    ``doc_ref`` anchors the scenario into ``docs/SCENARIOS.md``
    (``"docs/SCENARIOS.md#<anchor>"``); the drift guard in
    ``tests/test_docs.py`` fails the build if the anchor goes stale.
    ``objects`` sizes the keyspace the scenario runs over (1 keeps the
    classic single-queue cluster); ``transactions`` is the default run
    length, overridable at run time.
    """

    name: str
    doc_ref: str
    description: str
    mix: MixSpec = field(default_factory=MixSpec)
    skew: SkewSpec = field(default_factory=SkewSpec)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    ops_per_transaction: int = 3
    concurrency: int = 4
    think_time: float = 0.1
    objects: int = 1
    transactions: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if "#" not in self.doc_ref:
            raise ValueError(
                f"scenario {self.name!r}: doc_ref must be "
                "'<path>#<anchor>', got " + repr(self.doc_ref)
            )
        if self.ops_per_transaction < 1:
            raise ValueError(
                f"scenario {self.name!r}: ops_per_transaction must be >= 1"
            )
        if self.concurrency < 1:
            raise ValueError(f"scenario {self.name!r}: concurrency must be >= 1")
        if self.think_time <= 0:
            raise ValueError(f"scenario {self.name!r}: think_time must be > 0")
        if self.objects < 1:
            raise ValueError(f"scenario {self.name!r}: objects must be >= 1")
        if self.transactions < 1:
            raise ValueError(f"scenario {self.name!r}: transactions must be >= 1")
        if self.skew.s > 0 and self.objects < 2:
            raise ValueError(
                f"scenario {self.name!r}: key skew needs at least 2 objects"
            )


class ScenarioWorkload:
    """The user-supplied workload class contract (pgWorkload-style).

    Subclass (or duck-type) this to drive arbitrary transaction bodies
    through the :class:`~repro.sim.workload.WorkloadGenerator`:

    * :meth:`init` is called once with the built cluster, before any
      transaction runs — stash handles, pre-seed state;
    * :meth:`run` is called once per transaction with the simulator's
      seeded RNG and returns that transaction's operation list as
      ``(object_name, invocation)`` pairs.  Draw *only* from the given
      ``rng`` (never ``random`` module globals) to stay inside the
      determinism envelope.

    The generator owns everything else: concurrency, retries, deadlock
    policy, arrival gating, metrics.
    """

    def init(self, cluster) -> None:  # pragma: no cover - default no-op
        """One-time setup against the built cluster (optional)."""

    def run(self, rng) -> Sequence[tuple]:
        """Return one transaction's ``(object_name, invocation)`` list."""
        raise NotImplementedError


class MixWorkload(ScenarioWorkload):
    """The built-in workload: sample a compiled weighted mix.

    Performs exactly ``ops_per_transaction`` draws of ``mix.sample``
    per transaction — the same RNG consumption as the legacy inline
    sampler, which is what keeps the compiled default scenario
    byte-identical to seeded legacy runs.
    """

    def __init__(self, mix, ops_per_transaction: int):
        self.mix = mix
        self.ops_per_transaction = ops_per_transaction

    def run(self, rng) -> list[tuple]:
        return [self.mix.sample(rng) for _ in range(self.ops_per_transaction)]
