"""Compile scenario specs onto the workload engine and run them audited.

Three layers, mirroring the chaos runner's discipline:

* :func:`scenario_keyspace` — the keyspace a scenario runs over:
  ``objects`` mixed-type objects (queue/register/counter) all under
  **one** concurrency-control scheme, so the same traffic shape can be
  replayed under each of the paper's three atomicity mechanisms
  (:data:`MECHANISMS` maps the paper-facing mechanism names onto the
  cluster's scheme names);
* :func:`build_scenario` — spec → ``(cluster, generator)``: the
  operation mix is compiled per object from the scenario's read/write
  balance and zipf hot-key ranking, arrivals from its arrival process,
  and both ride the :class:`~repro.sim.workload.WorkloadGenerator`'s
  ``workload``/``arrivals`` hooks.  The ``default`` scenario compiles
  to *exactly* the legacy workload — same cluster build, same RNG draw
  sequence — which ``tests/test_scenarios.py`` pins byte-for-byte;
* :func:`run_scenario` — one audited run, optionally under a chaos
  profile, returning a plain picklable verdict whose ``fingerprint``
  sub-dict is mode-independent (identical across rpc modes and job
  counts) while simulated-clock figures live under ``timing``.
"""

from __future__ import annotations

from repro.resilience.chaos import PROFILES, ChaosSchedule, generate_schedule
from repro.resilience.policy import POLICIES, read_only_operations
from repro.scenarios.catalog import SCENARIOS
from repro.scenarios.sampler import (
    bursty_arrivals,
    hot_key_ranks,
    poisson_arrivals,
    zipf_weights,
)
from repro.scenarios.spec import ArrivalSpec, MixWorkload, ScenarioSpec

__all__ = [
    "MECHANISMS",
    "build_scenario",
    "compile_arrivals",
    "compile_mix",
    "run_scenario",
    "scenario_keyspace",
    "scenario_trial",
]

#: Paper-facing mechanism name → cluster concurrency-control scheme.
#: ``blocking`` is the paper's dynamic atomicity (two-phase locking,
#: transactions block), ``multiversion`` its static atomicity
#: (timestamp-ordered versions), ``hybrid`` the headline mechanism.
MECHANISMS: dict[str, str] = {
    "blocking": "dynamic",
    "multiversion": "static",
    "hybrid": "hybrid",
}


def _scheme_for(mechanism: str) -> str:
    try:
        return MECHANISMS[mechanism]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {mechanism!r} (choose from "
            f"{', '.join(sorted(MECHANISMS))})"
        ) from None


def _hybrid_relation(datatype):
    """A valid hybrid dependency relation for any catalog data type.

    The queue gets the paper's minimal grounded relation; other types
    fall back to the total relation, which is atomic for every data
    type (every dependency kept means every serialization order the
    scheme admits is a dependency order).
    """
    from repro.dependency import known
    from repro.dependency.relation import DependencyRelation
    from repro.types import Queue

    if isinstance(datatype, Queue):
        return known.ground(datatype, known.QUEUE_STATIC, 5)
    return DependencyRelation.total(
        datatype.invocations(), known.event_alphabet(datatype, 5)
    )


def scenario_keyspace(n_objects: int, n_sites: int, scheme: str):
    """A mixed-type keyspace with every object under one scheme.

    Like :func:`~repro.replication.keyspace.demo_keyspace` the objects
    cycle queue/register/counter (full replication), but the scheme is
    uniform — the scenario matrix varies the *mechanism* axis across
    runs, not within a keyspace.  Deterministic: same arguments, same
    spec.
    """
    from repro.replication.keyspace import KeyspaceSpec, ObjectSpec, PlacementRule
    from repro.types import Counter, Queue, Register

    prototypes = (("queue", Queue()), ("register", Register()), ("counter", Counter()))
    specs = []
    for index in range(n_objects):
        kind, datatype = prototypes[index % 3]
        specs.append(
            ObjectSpec(
                f"{kind}-{index}",
                datatype,
                scheme=scheme,
                placement=PlacementRule.all(),
                relation=_hybrid_relation(datatype) if scheme == "hybrid" else None,
            )
        )
    return KeyspaceSpec(n_sites, tuple(specs))


def compile_mix(object_specs, scenario: ScenarioSpec, seed: int):
    """Compile the scenario's weighted mix over a keyspace's objects.

    Per invocation: ``zipf(object rank) × read-or-write weight × named
    multiplier``.  Object ranks come from the seeded hot-key shuffle;
    invocations keep catalog order (spec order, then
    ``datatype.invocations()`` order), so the all-ones default compiles
    to the legacy uniform mix *tuple-for-tuple*.
    """
    from repro.sim.workload import OperationMix

    names = [obj.name for obj in object_specs]
    ranks = hot_key_ranks(names, seed)
    weights = zipf_weights(len(names), scenario.skew.s)
    choices = []
    for obj in object_specs:
        object_weight = weights[ranks[obj.name]]
        read_only = read_only_operations(obj.datatype)
        for invocation in obj.datatype.invocations():
            factor = scenario.mix.multiplier(
                invocation.op, invocation.op in read_only
            )
            choices.append(((obj.name, invocation), object_weight * factor))
    return OperationMix(tuple(choices))


def compile_arrivals(
    scenario: ScenarioSpec, transactions: int, seed: int
) -> tuple[float, ...] | None:
    """The scenario's arrival schedule (``None`` for the closed loop)."""
    arrival: ArrivalSpec = scenario.arrival
    if arrival.kind == "closed":
        return None
    if arrival.kind == "poisson":
        return poisson_arrivals(arrival.rate, transactions, seed)
    return bursty_arrivals(
        arrival.rate,
        arrival.burst_rate,
        arrival.burst_length,
        arrival.cycle,
        transactions,
        seed,
    )


def build_scenario(
    scenario: ScenarioSpec | str,
    *,
    seed: int = 0,
    mechanism: str = "hybrid",
    n_sites: int | None = None,
    rpc_mode: str = "batched",
    transactions: int | None = None,
    tracer=None,
    workload=None,
):
    """Spec → ``(cluster, generator, names)``, ready to run.

    A single-object scenario builds the classic cluster
    (:func:`~repro.replication.cluster.build_cluster` + one ``"queue"``
    object, 3 sites by default); multi-object scenarios build the
    :func:`scenario_keyspace` (5 sites by default).  ``workload``
    overrides the compiled :class:`~repro.scenarios.spec.MixWorkload`
    with a user-supplied :class:`~repro.scenarios.spec.ScenarioWorkload`
    (its ``init`` is called here, before any transaction runs).
    """
    from repro.replication.cluster import build_cluster, build_keyspace
    from repro.sim.workload import WorkloadGenerator

    if isinstance(scenario, str):
        from repro.scenarios.catalog import scenario as lookup

        scenario = lookup(scenario)
    scheme = _scheme_for(mechanism)
    total = transactions if transactions is not None else scenario.transactions
    if scenario.objects == 1:
        sites = n_sites if n_sites is not None else 3
        cluster = build_cluster(
            sites, seed=seed, rpc_mode=rpc_mode, drop_probability=0.0, tracer=tracer
        )
        from repro.replication.keyspace import ObjectSpec
        from repro.types import Queue

        queue = Queue()
        cluster.add_object(
            "queue",
            queue,
            scheme,
            relation=_hybrid_relation(queue) if scheme == "hybrid" else None,
        )
        object_specs = (ObjectSpec("queue", queue, scheme=scheme),)
    else:
        sites = n_sites if n_sites is not None else 5
        spec = scenario_keyspace(scenario.objects, sites, scheme)
        cluster = build_keyspace(
            spec, seed=seed, rpc_mode=rpc_mode, drop_probability=0.0, tracer=tracer
        )
        object_specs = spec.objects
    names = tuple(obj.name for obj in object_specs)
    mix = compile_mix(object_specs, scenario, seed)
    source = workload if workload is not None else MixWorkload(
        mix, scenario.ops_per_transaction
    )
    source.init(cluster)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        mix,
        ops_per_transaction=scenario.ops_per_transaction,
        concurrency=scenario.concurrency,
        think_time=scenario.think_time,
        workload=source,
        arrivals=compile_arrivals(scenario, total, seed),
    )
    return cluster, generator, names


def run_scenario(
    scenario: ScenarioSpec | str,
    *,
    seed: int = 0,
    mechanism: str = "hybrid",
    profile: str = "none",
    policy: str | None = None,
    rpc_mode: str = "batched",
    n_sites: int | None = None,
    transactions: int | None = None,
    streaming: bool = True,
    window: int | None = None,
    workload=None,
) -> dict:
    """One audited scenario run; returns a plain (picklable) verdict.

    ``profile`` is ``"none"`` (fault-free) or one of the chaos
    :data:`~repro.resilience.chaos.PROFILES`; a chaos profile enables
    the resilience layer under ``policy`` (default ``"default"``),
    applies the boundary-indexed fault schedule, and after the run
    clears outstanding faults, reconciles replicas with two
    anti-entropy passes, and checks convergence — exactly the chaos
    runner's cleanup discipline.  The auditor watches every run
    (bounded-memory streaming monitors by default).  ``ok`` requires
    zero audit violations, converged replicas, and full accounting.
    """
    from repro.obs.audit import DEFAULT_STREAM_WINDOW, Auditor
    from repro.obs.trace import Tracer

    if isinstance(scenario, str):
        from repro.scenarios.catalog import scenario as lookup

        scenario = lookup(scenario)
    if profile != "none" and profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r} (use 'none' or one of {PROFILES})"
        )
    win = window if window is not None else DEFAULT_STREAM_WINDOW
    tracer = Tracer(retention="ring", window=win) if streaming else Tracer()
    total = transactions if transactions is not None else scenario.transactions
    cluster, generator, names = build_scenario(
        scenario,
        seed=seed,
        mechanism=mechanism,
        n_sites=n_sites,
        rpc_mode=rpc_mode,
        transactions=total,
        tracer=tracer,
        workload=workload,
    )
    sites = cluster.network.n_sites
    runtime = None
    schedule = None
    if profile != "none" or policy is not None:
        policy_name = policy if policy is not None else "default"
        if policy_name not in POLICIES:
            raise ValueError(
                f"unknown policy {policy_name!r} "
                f"(choose from {', '.join(sorted(POLICIES))})"
            )
        runtime = cluster.enable_resilience(POLICIES[policy_name])
    else:
        policy_name = None
    auditor = Auditor(
        cluster, mode="streaming" if streaming else "deep", window=win
    )
    if profile != "none":
        schedule = ChaosSchedule(generate_schedule(profile, seed, sites, total))
        generator.on_transaction_start = schedule.hook(cluster.network)
    metrics = generator.run(total)

    converged = True
    if profile != "none":
        if cluster.network.partitioned:
            cluster.network.heal()
        for site in sorted(cluster.network.crashed_sites):
            cluster.network.recover(site)
        antientropy = runtime.heal.antientropy
        sync_pairs = sorted(
            {
                (reps[0], rep)
                for reps in map(cluster.placement.replicas, names)
                for rep in reps[1:]
            }
        )
        for _pass in range(2):
            for first, second in sync_pairs:
                antientropy.synchronize(first, second)
        converged = all(
            len(
                {
                    str(cluster.repositories[site].peek_log(name))
                    for site in cluster.placement.replicas(name)
                }
            )
            == 1
            for name in names
        )
    report = auditor.finish()

    active = [t for t in cluster.tm.transactions() if t.is_active]
    attempted = sum(metrics.outcomes.values())
    by_outcome = {
        outcome: sum(
            count for (_op, o), count in metrics.outcomes.items() if o == outcome
        )
        for outcome in metrics.OUTCOMES
    }
    accounted = (
        not active
        and attempted == sum(by_outcome.values())
        and metrics.committed_transactions + metrics.aborted_transactions >= total
    )
    return {
        "scenario": scenario.name,
        "seed": seed,
        "mechanism": mechanism,
        "scheme": _scheme_for(mechanism),
        "profile": profile,
        "policy": policy_name,
        "rpc_mode": rpc_mode,
        "n_sites": sites,
        "transactions": total,
        "ok": bool(report.ok and converged and accounted),
        "violations": len(report.violations),
        "fingerprint": {
            "outcomes": {
                f"{op}/{outcome}": count
                for (op, outcome), count in sorted(metrics.outcomes.items())
            },
            "histories": {
                name: str(cluster.tm.object(name).recorder.to_behavioral_history())
                for name in names
            },
            "messages_sent": cluster.network.messages_sent,
            "messages_dropped": cluster.network.messages_dropped,
            "commits": metrics.committed_transactions,
            "aborts": metrics.aborted_transactions,
            "converged": converged,
            "audit_ok": report.ok,
            "faults_applied": schedule.applied if schedule is not None else 0,
        },
        "counts": {
            "attempted": attempted,
            "succeeded": by_outcome["ok"],
            "degraded": by_outcome["degraded"],
            "unavailable": by_outcome["unavailable"],
            "conflict": by_outcome["conflict"],
            "aborted_ops": by_outcome["aborted"],
            "accounted": accounted,
        },
        "timing": {
            "sim_time": cluster.sim.now,
            "retained_spans": report.retained_spans,
            "peak_retained": report.peak_retained,
        },
    }


def scenario_trial(
    seed: int,
    *,
    scenario: str,
    mechanism: str = "hybrid",
    profile: str = "none",
    policy: str | None = None,
    rpc_mode: str = "batched",
    transactions: int | None = None,
) -> dict:
    """Module-level trial wrapper so sweeps pickle under ``--jobs N``."""
    return run_scenario(
        scenario,
        seed=seed,
        mechanism=mechanism,
        profile=profile,
        policy=policy,
        rpc_mode=rpc_mode,
        transactions=transactions,
    )
