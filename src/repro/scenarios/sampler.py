"""Seeded samplers for scenario compilation: key skew and arrivals.

Every sampler here draws from a dedicated :class:`random.Random` seeded
by integer key mixing (:func:`~repro.resilience.policy._mix_key`) under
a fixed domain constant — never from ``sim.rng`` (which the workload
consumes operation by operation) and never from string ``hash()``
(randomized per process).  That is the same discipline the chaos
schedules follow, and it is what keeps a compiled scenario inside the
determinism envelope: the same ``(scenario, seed)`` pair produces the
same hot-key ranking and the same arrival schedule in every process, at
every ``--jobs`` setting, under either rpc mode.

Arrival schedules are expressed in *simulated-time units on the
driver's pacing clock* (see :mod:`repro.sim.workload`), not on
``sim.now`` — batched quorum fan-out overlaps probe latencies, so the
kernel clock legitimately diverges between rpc modes while outcomes
stay byte-identical.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.resilience.policy import _mix_key

__all__ = [
    "bursty_arrivals",
    "hot_key_ranks",
    "poisson_arrivals",
    "zipf_weights",
]

#: Domain-separation constant for scenario sampler RNGs (arbitrary,
#: fixed forever: changing it re-rolls every published scenario).
_SAMPLER_DOMAIN = 0x5CE9A

#: Sub-domains under :data:`_SAMPLER_DOMAIN`, one per sampler family,
#: so the skew shuffle and the arrival schedule never share a stream.
_SKEW_STREAM = 1
_ARRIVAL_STREAM = 2


def zipf_weights(n: int, s: float) -> tuple[float, ...]:
    """Zipf weights for ``n`` ranks: weight of rank ``r`` ∝ 1/(r+1)**s.

    ``s = 0`` degenerates to the uniform distribution (every weight
    exactly ``1.0``), which is what lets the default scenario compile to
    the legacy uniform mix byte-for-byte.  Larger ``s`` concentrates
    probability on the low ranks — ``s ≈ 1`` is the classic web-traffic
    skew, ``s > 1`` a hot-key stress.
    """
    if n < 1:
        raise ValueError("zipf_weights needs at least one rank")
    if s < 0:
        raise ValueError(f"zipf exponent must be non-negative, got {s}")
    if s == 0:
        return (1.0,) * n
    return tuple(1.0 / math.pow(rank + 1, s) for rank in range(n))


def hot_key_ranks(names: Sequence[str], seed: int) -> dict[str, int]:
    """Map each object name to its zipf rank (0 = hottest).

    Which keys are hot is part of the *seed*, not the catalog: the rank
    order is a seeded shuffle of the sorted names, so seed 0 and seed 1
    stress different keys while either seed is reproducible everywhere.
    """
    ordered = sorted(names)
    rng = random.Random(
        _mix_key(seed, (_SAMPLER_DOMAIN, _SKEW_STREAM, len(ordered)))
    )
    rng.shuffle(ordered)
    return {name: rank for rank, name in enumerate(ordered)}


def poisson_arrivals(rate: float, n: int, seed: int) -> tuple[float, ...]:
    """``n`` open-loop Poisson arrival instants at ``rate`` per time unit.

    Inter-arrival gaps are i.i.d. exponential draws; the returned tuple
    is the cumulative (non-decreasing) schedule the workload driver
    gates admission on.  Deterministic per ``(rate, n, seed)``.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if n < 0:
        raise ValueError("cannot schedule a negative number of arrivals")
    rng = random.Random(_mix_key(seed, (_SAMPLER_DOMAIN, _ARRIVAL_STREAM, n)))
    clock = 0.0
    schedule = []
    for _ in range(n):
        clock += rng.expovariate(rate)
        schedule.append(clock)
    return tuple(schedule)


def bursty_arrivals(
    base_rate: float,
    burst_rate: float,
    burst_length: int,
    cycle: int,
    n: int,
    seed: int,
) -> tuple[float, ...]:
    """A flash-crowd schedule: calm Poisson traffic with periodic bursts.

    Every ``cycle`` arrivals, the first ``burst_length`` of them come at
    ``burst_rate`` (the crowd) and the remainder at ``base_rate`` (the
    calm).  Both phases are exponential inter-arrival draws from one
    seeded stream, so the whole schedule is reproducible and the burst
    boundaries are indexed by arrival count — not wall or sim time —
    exactly like chaos fault boundaries.
    """
    if base_rate <= 0 or burst_rate <= 0:
        raise ValueError("arrival rates must be positive")
    if burst_length < 1 or cycle < 2 or burst_length >= cycle:
        raise ValueError(
            f"need 1 <= burst_length < cycle, got burst_length={burst_length} "
            f"cycle={cycle}"
        )
    if n < 0:
        raise ValueError("cannot schedule a negative number of arrivals")
    rng = random.Random(_mix_key(seed, (_SAMPLER_DOMAIN, _ARRIVAL_STREAM, n)))
    clock = 0.0
    schedule = []
    for index in range(n):
        rate = burst_rate if (index % cycle) < burst_length else base_rate
        clock += rng.expovariate(rate)
        schedule.append(clock)
    return tuple(schedule)
