"""Exception hierarchy for the repro library.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(ReproError):
    """A serial specification was queried in an inconsistent way.

    Raised, for example, when a history is replayed against a data type
    that does not define one of the history's operations.
    """


class IllegalHistoryError(ReproError):
    """A history violates the serial specification it was checked against."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        #: Index of the first offending event, when known.
        self.position = position


class DependencyError(ReproError):
    """A dependency-relation computation was given inconsistent inputs."""


class QuorumError(ReproError):
    """A quorum assignment or coterie is structurally invalid."""


class UnavailableError(ReproError):
    """No quorum of live repositories could be assembled for an operation."""

    def __init__(self, operation: str, missing: frozenset[int] = frozenset()):
        super().__init__(
            f"no available quorum for operation {operation!r}"
            + (f" (unreachable sites: {sorted(missing)})" if missing else "")
        )
        self.operation = operation
        self.missing = missing


class DegradedOperation(ReproError):
    """A read-only operation fell back to read-quorum-only degraded mode.

    Raised by :meth:`FrontEnd.execute` when the final quorum stayed
    unreachable through every retry but the operation's
    :class:`~repro.resilience.policy.RetryPolicy` enables
    ``degraded_reads`` and the operation never mutates state: the
    response is legal for the merged initial-quorum view but was *not*
    logged and is not part of the transaction.  Deliberately an
    exception on the plain :meth:`execute` path so a degraded result can
    never be mistaken for a replicated one; callers that opt in use
    :meth:`FrontEnd.execute_outcome`, which converts it into an explicit
    :class:`~repro.resilience.policy.OperationResult`.
    """

    def __init__(self, operation: str, response, attempts: int = 1):
        super().__init__(
            f"operation {operation!r} served in degraded read-quorum-only "
            f"mode after {attempts} final-quorum attempt(s)"
        )
        self.operation = operation
        self.response = response
        self.attempts = attempts


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted; all of its effects have been undone."""

    def __init__(self, action_id: object, reason: str):
        super().__init__(f"transaction {action_id} aborted: {reason}")
        self.action_id = action_id
        self.reason = reason


class ConflictError(TransactionError):
    """A concurrency-control scheme refused an operation due to a conflict.

    Depending on the scheme this may be retried (lock conflicts) or must
    abort the transaction (timestamp-order violations).
    """

    def __init__(self, message: str, *, fatal: bool, holder: object | None = None):
        super().__init__(message)
        #: ``True`` when the transaction must abort (cannot simply wait).
        self.fatal = fatal
        #: For lock conflicts: the transaction holding the conflicting lock.
        self.holder = holder


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ProtocolError(ReproError):
    """A replication protocol message violated the protocol state machine."""
