"""Conflict predicates derived from the theory kernel.

The synchronization half of each scheme needs a fast answer to "may
these two operations run in concurrent uncommitted transactions?":

* the **locking** scheme conflicts exactly the non-commuting event pairs
  (Definition 8 / Theorem 10 — the same structure as the minimal dynamic
  dependency relation);
* the **hybrid** scheme conflicts pairs related by a hybrid dependency
  relation in either direction: a transaction must not build a view on
  an uncommitted event it depends on, nor create an event an active
  reader's response depended on the absence of.

Both predicates are precomputed into dictionaries over the event
alphabet so the runtime never replays histories on the hot path.
"""

from __future__ import annotations

from repro.dependency.dynamic_dep import commutativity_table
from repro.dependency.relation import DependencyRelation
from repro.histories.events import Event
from repro.spec.datatype import SerialDataType
from repro.spec.enumerate import event_alphabet
from repro.spec.legality import LegalityOracle


class ConflictTable:
    """A symmetric conflict predicate over ground events.

    Events outside the precomputed alphabet conservatively conflict with
    everything (sound: extra conflicts never violate atomicity, they
    only cost concurrency).
    """

    def __init__(self, conflicts: dict[tuple[Event, Event], bool]):
        self._conflicts = conflicts

    def conflict(self, first: Event, second: Event) -> bool:
        return self._conflicts.get((first, second), True)

    def pairs(self) -> dict[tuple[Event, Event], bool]:
        return dict(self._conflicts)

    def matrix(self) -> str:
        """Render the conflict matrix (X = conflict, . = compatible).

        The lock-mode compatibility table of classical concurrency
        control, generated from the type instead of hand-written.
        """
        events = sorted({e for pair in self._conflicts for e in pair}, key=str)
        if not events:
            return "(empty conflict table)"
        label_width = max(len(str(e)) for e in events) + 6
        lines = [
            f"[{index}] {event}" for index, event in enumerate(events)
        ]
        lines.append("")
        lines.append(
            " " * label_width
            + " ".join(f"{index}" for index in range(len(events)))
        )
        for index, row_event in enumerate(events):
            marks = " ".join(
                "X" if self.conflict(row_event, col_event) else "."
                for col_event in events
            )
            lines.append(f"{f'[{index}] {row_event}':<{label_width}}{marks}")
        return "\n".join(lines)


def commutativity_conflicts(
    datatype: SerialDataType,
    max_events: int = 4,
    oracle: LegalityOracle | None = None,
    events: tuple[Event, ...] | None = None,
) -> ConflictTable:
    """Conflicts = non-commuting event pairs (two-phase locking)."""
    oracle = oracle or LegalityOracle(datatype)
    if events is None:
        events = event_alphabet(datatype, max_events + 2, oracle)
    table = commutativity_table(datatype, max_events, oracle, events)
    return ConflictTable(
        {pair: not commutes for pair, commutes in table.items()}
    )


def dependency_conflicts(
    relation: DependencyRelation,
    events: tuple[Event, ...],
) -> ConflictTable:
    """Conflicts = pairs related by ``relation`` in either direction."""
    conflicts: dict[tuple[Event, Event], bool] = {}
    for first in events:
        for second in events:
            conflicts[(first, second)] = relation.depends(
                first.inv, second
            ) or relation.depends(second.inv, first)
    return ConflictTable(conflicts)
