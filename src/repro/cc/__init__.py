"""Concurrency control: one scheme per local atomicity property.

The paper's three-way classification of pessimistic atomicity mechanisms
(Section 1) maps to three schemes over the same replicated-object
substrate:

* :class:`~repro.cc.static_ts.StaticTimestampCC` — Reed-style
  begin-timestamp ordering, enforcing **static atomicity**;
* :class:`~repro.cc.locking.DynamicLockingCC` — commutativity-based
  two-phase locking (Schwarz–Spector style), enforcing **strong dynamic
  atomicity**;
* :class:`~repro.cc.hybrid.HybridCC` — commit-time timestamps with
  dependency-based short-term locks (Weihl style), enforcing **hybrid
  atomicity**.

Each scheme both *decides responses* from quorum views and *synchronizes*
concurrent transactions; the end-to-end tests check the behavioral
histories the schemes generate against the theory kernel's membership
checkers for their respective properties.
"""

from repro.cc.base import CCScheme, pick_response
from repro.cc.static_ts import StaticTimestampCC
from repro.cc.locking import DynamicLockingCC
from repro.cc.hybrid import HybridCC
from repro.cc.conflicts import dependency_conflicts, commutativity_conflicts

__all__ = [
    "CCScheme",
    "pick_response",
    "StaticTimestampCC",
    "DynamicLockingCC",
    "HybridCC",
    "dependency_conflicts",
    "commutativity_conflicts",
]
