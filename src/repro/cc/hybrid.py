"""Hybrid concurrency control: commit-time timestamps plus dependency locks.

Hybrid atomicity serializes committed actions in the order of their
Commit events (Definition 3).  At runtime this means:

* a response for an invocation is chosen as if the executing transaction
  were to commit *next*: legal for the serial history of committed
  events in commit-timestamp order followed by the transaction's own
  events;
* short-term synchronization keeps concurrently *active* transactions
  from invalidating each other: transaction T may not execute an event
  related by the hybrid dependency relation (in either direction) to an
  event held by another active transaction.

The conflict raised is non-fatal — the blocked transaction may wait for
the holder to finish — matching the lock-based flavor of real hybrid
schemes (Weihl's commit-time timestamps, Avalon).
"""

from __future__ import annotations

from repro.cc.base import CCScheme, pick_response
from repro.cc.conflicts import ConflictTable, dependency_conflicts
from repro.dependency.relation import DependencyRelation
from repro.errors import ConflictError
from repro.histories.events import Event, Invocation, Response
from repro.replication.view import View
from repro.spec.datatype import SerialDataType
from repro.spec.enumerate import event_alphabet
from repro.spec.legality import LegalityOracle
from repro.txn.ids import Transaction


class HybridCC(CCScheme):
    """Commit-time timestamp ordering with dependency-based locking."""

    name = "hybrid"
    serialization_order = "commit"

    def __init__(
        self,
        datatype: SerialDataType,
        relation: DependencyRelation,
        oracle: LegalityOracle | None = None,
        conflicts: ConflictTable | None = None,
    ):
        super().__init__(datatype, oracle)
        self.relation = relation
        if conflicts is None:
            events = event_alphabet(datatype, 4, self.oracle)
            conflicts = dependency_conflicts(relation, events)
        self.conflicts = conflicts
        #: Memoized deterministic response order, keyed by the oracle's
        #: per-node response sets (small, few distinct values): avoids
        #: re-rendering responses to strings on every operation.
        self._sorted_responses: dict[frozenset[Response], tuple[Response, ...]] = {}

    def choose_event(
        self,
        view: View,
        txn: Transaction,
        invocation: Invocation,
        sync,
    ) -> Event:
        cache = view.serial_cache
        if cache is not None and not cache.contains_committed(txn.id):
            event = self._choose_cached(cache, view, txn, invocation)
        else:
            prefix = view.commit_order_serial(own=txn.id)
            event = pick_response(
                self.oracle, prefix, invocation, base_state=view.base_state
            )
        if event is None:
            raise self._too_late(invocation)
        for holder, held_events in sync.active_events.items():
            if holder == txn.id:
                continue
            for held in held_events:
                if self.conflicts.conflict(event, held):
                    raise ConflictError(
                        f"{event} conflicts with uncommitted {held} of {holder}",
                        fatal=False,
                        holder=holder,
                    )
        return event

    def _choose_cached(
        self, cache, view: View, txn: Transaction, invocation: Invocation
    ) -> Event | None:
        """Incremental equivalent of ``pick_response`` over the commit order.

        The cache yields the legality-trie node for the view's committed
        prefix; stepping it through the transaction's own events lands on
        exactly the node ``pick_response`` would reach by replaying
        ``view.commit_order_serial(own=txn.id)`` from ``view.base_state``,
        so the memoized response set, the deterministic (sorted-render)
        candidate order, and the one-hop legality checks below choose the
        identical event.
        """
        oracle = self.oracle
        node = cache.committed_node(view, oracle)
        step = oracle._step
        for entry in view.log.entries_of(txn.id):
            node = step(node, entry.event)
        responses = oracle._node_responses(node, invocation)
        ordered = self._sorted_responses.get(responses)
        if ordered is None:
            ordered = tuple(sorted(responses, key=str))
            self._sorted_responses[responses] = ordered
        for response in ordered:
            candidate = Event(invocation, response)
            if step(node, candidate).frontier is not None:
                return candidate
        return None
