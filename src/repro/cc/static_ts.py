"""Static concurrency control: begin-timestamp ordering (Reed, Swallow).

Static atomicity serializes committed actions in the order of their
Begin events (Definition 3): a transaction's serialization position is
fixed the moment it begins.  ``Static(T)`` is moreover *on-line* — at
every moment, committing any subset of the active transactions must
yield a legal begin-order serialization — so enforcement is pessimistic,
at operation time (as in Reed's multiversion scheme), not by optimistic
commit-time certification:

* a response for an invocation must keep **every** static serialization
  legal: for every subset of the other active transactions, inserting
  the new event at this transaction's begin position among the
  committed-plus-subset events must be legal;
* a violation involving only committed events is fatal — the transaction
  arrived "too late" for its begin position (the timestamp-scheme abort);
* a violation involving an active transaction's uncommitted events is a
  non-fatal conflict — the transaction waits for the holder to finish,
  exactly like a reader blocked on an uncommitted version;
* commit needs no certification (the on-line invariant makes any commit
  safe); :meth:`pre_commit` re-checks it as a cheap safety net.
"""

from __future__ import annotations

from itertools import chain, combinations

from repro.cc.base import CCScheme
from repro.clocks.timestamps import Timestamp
from repro.errors import ConflictError
from repro.histories.events import Event, Invocation, SerialHistory
from repro.replication.view import View
from repro.txn.ids import ActionId, Transaction


class StaticTimestampCC(CCScheme):
    """Begin-timestamp ordering with pessimistic operation-time checks."""

    name = "static"
    serialization_order = "begin"

    def choose_event(
        self,
        view: View,
        txn: Transaction,
        invocation: Invocation,
        sync,
    ) -> Event:
        if view.base_state is not None:
            raise ConflictError(
                "static atomicity cannot execute against a compacted view "
                "(begin-order serialization may interleave with the folded "
                "prefix)",
                fatal=True,
            )
        own_events = sync.own_events(txn.id)
        committed_groups = self._committed_groups(view, txn.id)
        active_groups = self._active_groups(view, sync, txn.id)

        # Candidate responses must at least work against committed events
        # alone (the empty subset of active transactions).
        before, after = self._split(committed_groups, txn.begin_ts)
        prefix = before + own_events
        candidates = [
            Event(invocation, res)
            for res in sorted(self.oracle.responses(prefix, invocation), key=str)
        ]

        blocking_holder: ActionId | None = None
        for event in candidates:
            holder = self._first_violation(
                committed_groups, active_groups, txn, own_events, event
            )
            if holder is None:
                return event
            if holder != _COMMITTED:
                blocking_holder = holder
        if blocking_holder is not None:
            raise ConflictError(
                f"{invocation} at {txn.id}'s begin position conflicts with "
                f"uncommitted events of {blocking_holder}",
                fatal=False,
                holder=blocking_holder,
            )
        raise self._too_late(invocation)

    def pre_commit(self, txn: Transaction, sync) -> None:
        """Safety net: the on-line invariant makes commits always safe."""
        before, after = sync.committed_split(txn.begin_ts)
        serial = before + tuple(sync.own_events(txn.id)) + after
        if not self.oracle.is_legal(serial):
            raise ConflictError(
                f"certification failed for {txn.id}: static on-line "
                "invariant was broken (this indicates a scheme bug)",
                fatal=True,
            )

    # -- internals -----------------------------------------------------------

    def _first_violation(
        self,
        committed_groups: list[tuple[Timestamp, tuple[Event, ...]]],
        active_groups: list[tuple[Timestamp, ActionId, tuple[Event, ...]]],
        txn: Transaction,
        own_events: tuple[Event, ...],
        event: Event,
    ):
        """The holder blamed for the first illegal static serialization.

        Checks every subset of the other active transactions, smallest
        first; returns ``None`` if every serialization stays legal, the
        sentinel ``_COMMITTED`` if even the committed-only serialization
        fails, or the :class:`ActionId` of an active transaction whose
        inclusion breaks legality.
        """
        indices = range(len(active_groups))
        for subset in chain.from_iterable(
            combinations(indices, size) for size in range(len(active_groups) + 1)
        ):
            groups = list(committed_groups)
            for index in subset:
                begin_ts, _holder, events = active_groups[index]
                groups.append((begin_ts, events))
            before, after = self._split(groups, txn.begin_ts)
            serial = before + own_events + (event,) + after
            if not self.oracle.is_legal(serial):
                if not subset:
                    return _COMMITTED
                return active_groups[subset[-1]][1]
        return None

    @staticmethod
    def _split(
        groups: list[tuple[Timestamp, tuple[Event, ...]]], own_begin: Timestamp
    ) -> tuple[SerialHistory, SerialHistory]:
        before: list[Event] = []
        after: list[Event] = []
        for begin_ts, events in sorted(groups, key=lambda g: g[0]):
            (before if begin_ts < own_begin else after).extend(events)
        return tuple(before), tuple(after)

    @staticmethod
    def _committed_groups(
        view: View, own: ActionId
    ) -> list[tuple[Timestamp, tuple[Event, ...]]]:
        return [
            (view.statuses.begin_ts_of(action), view.events_of(action))
            for action in view.committed_actions()
            if action != own
        ]

    @staticmethod
    def _active_groups(
        view: View, sync, own: ActionId
    ) -> list[tuple[Timestamp, ActionId, tuple[Event, ...]]]:
        return [
            (view.statuses.begin_ts_of(action), action, tuple(events))
            for action, events in sorted(
                sync.active_events.items(), key=lambda item: str(item[0])
            )
            if action != own and events
        ]


#: Sentinel distinguishing "conflicts with committed history" from a holder.
_COMMITTED = "committed"
