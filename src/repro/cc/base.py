"""The concurrency-control scheme interface.

A scheme is consulted at three points in a transaction's life:

* :meth:`CCScheme.choose_event` — when a front-end has assembled a view
  and needs a response for an invocation.  The scheme serializes the
  view as its atomicity property dictates, picks a legal response, and
  checks synchronization conflicts against concurrently active
  transactions (raising :class:`~repro.errors.ConflictError` to block or
  abort).
* :meth:`CCScheme.pre_commit` — commit-time certification; raising
  :class:`~repro.errors.ConflictError` vetoes the commit.
* :meth:`CCScheme.on_finalize` — after commit or abort, to release
  whatever the scheme was holding.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import ConflictError
from repro.histories.events import Event, Invocation, SerialHistory
from repro.replication.view import View
from repro.spec.datatype import SerialDataType
from repro.spec.legality import LegalityOracle
from repro.txn.ids import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.replication.object import SynchronizationState


def pick_response(
    oracle: LegalityOracle,
    prefix: SerialHistory,
    invocation: Invocation,
    suffix: SerialHistory = (),
    base_state=None,
) -> Event | None:
    """Choose a response legal between ``prefix`` and ``suffix``.

    Responses are tried in a deterministic order (sorted rendering) so
    runs are reproducible; for a nondeterministic type any legal choice
    is correct.  Returns ``None`` when no response works — under static
    atomicity that means the invocation arrived "too late".

    ``base_state`` replays everything from a compaction snapshot state
    instead of the type's initial state.
    """
    if base_state is None:
        for response in sorted(oracle.responses(prefix, invocation), key=str):
            event = Event(invocation, response)
            if oracle.is_legal_extension(prefix + (event,), suffix):
                return event
        return None
    candidates = oracle.responses_from(base_state, prefix, invocation)
    for response in sorted(candidates, key=str):
        event = Event(invocation, response)
        if oracle.is_legal_from(base_state, prefix + (event,) + suffix):
            return event
    return None


class CCScheme(ABC):
    """A local atomicity property's runtime enforcement."""

    #: Short name used in metrics and reports.
    name: str = "abstract"
    #: Which timestamp order the scheme serializes by ("begin"/"commit").
    serialization_order: str = "commit"

    def __init__(self, datatype: SerialDataType, oracle: LegalityOracle | None = None):
        self.datatype = datatype
        self.oracle = oracle or LegalityOracle(datatype)

    @abstractmethod
    def choose_event(
        self,
        view: View,
        txn: Transaction,
        invocation: Invocation,
        sync: "SynchronizationState",
    ) -> Event:
        """Pick the response event for ``invocation``, or raise ConflictError."""

    def pre_commit(self, txn: Transaction, sync: "SynchronizationState") -> None:
        """Commit-time certification; default: nothing to check."""

    def on_executed(
        self, txn: Transaction, event: Event, sync: "SynchronizationState"
    ) -> None:
        """Bookkeeping after an event is durably recorded; default: none."""

    def on_finalize(self, txn: Transaction, sync: "SynchronizationState") -> None:
        """Release scheme state after commit or abort; default: none."""

    @staticmethod
    def _too_late(invocation: Invocation) -> ConflictError:
        return ConflictError(
            f"no legal response for {invocation} at this serialization position",
            fatal=True,
        )
