"""Strong dynamic concurrency control: commutativity-based two-phase locking.

Strong dynamic atomicity (Definition 7) requires a history to be
serializable in *every* order consistent with the ``precedes`` order,
all serializations equivalent.  Two-phase locking over a
type-specific commutativity conflict table (Schwarz–Spector, Argus,
TABS) enforces exactly this: a transaction may execute an event only if
it commutes with every event held by every other active transaction, and
locks are held until commit or abort.

The conflict raised on a lock clash is non-fatal (the transaction can
wait), so the workload driver pairs this scheme with waits-for-graph
deadlock detection (:mod:`repro.txn.deadlock`).

The conflict table is the event-level commutativity relation of
Definition 8 — the very relation whose invocation-level projection is
the minimal dynamic dependency relation (Theorem 10).  The paper's
observation that locking ties concurrency *and* availability to the same
commutativity structure is literally this shared table.
"""

from __future__ import annotations

from repro.cc.base import CCScheme, pick_response
from repro.cc.conflicts import ConflictTable, commutativity_conflicts
from repro.errors import ConflictError
from repro.histories.events import Event, Invocation
from repro.replication.view import View
from repro.spec.datatype import SerialDataType
from repro.spec.legality import LegalityOracle
from repro.txn.ids import Transaction


class DynamicLockingCC(CCScheme):
    """Two-phase locking on the type's commutativity conflict table."""

    name = "dynamic"
    serialization_order = "commit"

    def __init__(
        self,
        datatype: SerialDataType,
        oracle: LegalityOracle | None = None,
        conflicts: ConflictTable | None = None,
        commutativity_depth: int = 4,
    ):
        super().__init__(datatype, oracle)
        if conflicts is None:
            conflicts = commutativity_conflicts(
                datatype, commutativity_depth, self.oracle
            )
        self.conflicts = conflicts

    def choose_event(
        self,
        view: View,
        txn: Transaction,
        invocation: Invocation,
        sync,
    ) -> Event:
        # Locking guarantees all precedes-consistent serializations are
        # equivalent, so the commit-order serialization is as good as any.
        prefix = view.commit_order_serial(own=txn.id)
        event = pick_response(
            self.oracle, prefix, invocation, base_state=view.base_state
        )
        if event is None:
            raise self._too_late(invocation)
        for holder, held_events in sync.active_events.items():
            if holder == txn.id:
                continue
            for held in held_events:
                if self.conflicts.conflict(event, held):
                    raise ConflictError(
                        f"{event} does not commute with uncommitted "
                        f"{held} of {holder}",
                        fatal=False,
                        holder=holder,
                    )
        return event
