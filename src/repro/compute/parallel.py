"""Multiprocess fan-out for the theory kernel.

The kernel's derivations are embarrassingly parallel at two grains: the
type catalog (one process per data type) and the shared-pass
commutativity sweep (one process per batch of top-level history
subtrees).  This module owns the pool plumbing so every caller gets the
same semantics:

* ``jobs`` resolves as: explicit argument, else the ``REPRO_JOBS``
  environment variable, else 1;
* ``jobs <= 1`` (or a single work item) never touches multiprocessing —
  the serial path is the fallback, not a degraded mode;
* a pool that cannot be created or dies mid-flight (sandboxes without
  fork, missing ``/dev/shm``, ...) falls back to the serial path rather
  than failing the derivation.

Workers must be module-level functions with picklable arguments; data
types, events, and relations in this codebase all pickle cleanly.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Exceptions that mean "no pool for you here", not "the work is wrong".
_POOL_FAILURES = (OSError, ImportError, RuntimeError, PermissionError)


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: argument, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "")
        try:
            jobs = int(raw) if raw.strip() else 1
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    *,
    chunksize: int = 1,
) -> tuple[list[R], bool]:
    """Map ``fn`` over ``items``, fanning out across processes when asked.

    Returns ``(results, parallel_used)`` — results in input order, and a
    flag recording whether a process pool actually did the work (False
    on the serial path or after a pool failure), so benchmarks can
    report honestly about what ran.

    ``chunksize`` batches that many items per worker round trip (the
    :meth:`~concurrent.futures.Executor.map` knob): with N short tasks
    over J workers, ``ceil(N / J)`` ships each worker its whole shard in
    one pickle exchange.  Purely a transport choice — results come back
    in input order regardless.
    """
    work: Sequence[T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work], False
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work, chunksize=max(1, chunksize))), True
    except _POOL_FAILURES:
        return [fn(item) for item in work], False
