"""The persistent, content-addressed artifact store.

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    artifacts/<fingerprint>.json   one artifact payload per type digest
    stats.log                      append-only hit/miss/store journal

Artifacts are immutable once written — the fingerprint *is* the
content address, so a stale entry is impossible by construction and
there is no eviction logic.  Writes go through a temp file and
``os.replace`` so a crashed writer never leaves a torn payload, and
concurrent writers of the same fingerprint race benignly (both write
identical bytes).

The journal exists because hit/miss counters in a per-process registry
vanish with the process: ``python -m repro cache warm`` then ``python
-m repro report`` are different processes, and CI asserts the second
one hit.  Appends use ``O_APPEND`` single-``write`` calls, which POSIX
keeps atomic for these short lines, so concurrent workers interleave
whole lines, never fragments.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.compute.codec import canonical_json
from repro.compute.obs import kernel_metrics, kernel_tracer

#: ``REPRO_CACHE`` values that disable the persistent layer entirely.
_DISABLED = {"0", "off", "false", "no"}

_JOURNAL_KINDS = ("hit", "miss", "store")


def cache_enabled() -> bool:
    """Whether the persistent cache layer is on (``REPRO_CACHE`` gate)."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in _DISABLED


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Content-addressed JSON artifacts with observable traffic."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def journal_path(self) -> Path:
        return self.root / "stats.log"

    def path_for(self, fingerprint: str) -> Path:
        return self.artifacts_dir / f"{fingerprint}.json"

    # -- traffic ------------------------------------------------------------

    def load(self, fingerprint: str) -> dict[str, Any] | None:
        """The payload stored under ``fingerprint``, or ``None`` on miss.

        A corrupt or unreadable file counts as a miss (the caller will
        re-derive and overwrite it).
        """
        metrics = kernel_metrics()
        with kernel_tracer().span("kernel.cache.load", fingerprint=fingerprint) as span:
            started = time.perf_counter()
            payload: dict[str, Any] | None = None
            try:
                text = self.path_for(fingerprint).read_text(encoding="ascii")
                decoded = json.loads(text)
                if isinstance(decoded, dict):
                    payload = decoded
            except (OSError, ValueError):
                payload = None
            outcome = "hit" if payload is not None else "miss"
            span.annotate(outcome=outcome)
            metrics.counter(f"kernel.cache.{outcome}").inc()
            metrics.histogram("kernel.cache.load.seconds").observe(
                time.perf_counter() - started
            )
            self._journal(outcome, fingerprint)
        return payload

    def store(self, fingerprint: str, payload: dict[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``fingerprint``."""
        with kernel_tracer().span("kernel.cache.store", fingerprint=fingerprint):
            self.artifacts_dir.mkdir(parents=True, exist_ok=True)
            target = self.path_for(fingerprint)
            temp = target.with_suffix(f".tmp.{os.getpid()}")
            temp.write_text(canonical_json(payload), encoding="ascii")
            os.replace(temp, target)
            kernel_metrics().counter("kernel.cache.store").inc()
            self._journal("store", fingerprint)
        return target

    # -- bookkeeping --------------------------------------------------------

    def _journal(self, kind: str, fingerprint: str) -> None:
        line = f"{kind} {fingerprint}\n".encode("ascii")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            pass  # the journal is advisory; never fail the derivation over it

    def stats(self) -> dict[str, Any]:
        """Lifetime traffic (from the journal) plus current disk usage."""
        counts = {kind: 0 for kind in _JOURNAL_KINDS}
        try:
            for line in self.journal_path.read_text(encoding="ascii").splitlines():
                kind = line.split(" ", 1)[0]
                if kind in counts:
                    counts[kind] += 1
        except OSError:
            pass
        artifacts = sorted(self.artifacts_dir.glob("*.json")) if (
            self.artifacts_dir.is_dir()
        ) else []
        return {
            "root": str(self.root),
            "artifacts": len(artifacts),
            "bytes": sum(path.stat().st_size for path in artifacts),
            "hits": counts["hit"],
            "misses": counts["miss"],
            "stores": counts["store"],
        }

    def clear(self) -> int:
        """Delete every artifact and the journal; returns files removed."""
        removed = 0
        if self.artifacts_dir.is_dir():
            for path in self.artifacts_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        try:
            self.journal_path.unlink()
        except OSError:
            pass
        return removed


def default_cache() -> ArtifactCache:
    """A cache rooted at the current environment's directory.

    Constructed per call (cheap) so tests that repoint
    ``REPRO_CACHE_DIR`` at a temp directory are isolated without any
    global to reset.
    """
    return ArtifactCache()
