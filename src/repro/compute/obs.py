"""Observability hooks for the theory-kernel compute layer.

The running system threads tracers and registries through constructors;
the kernel cannot — its entry points are free functions called from
reports, benchmarks, and tests.  So the compute layer keeps one
process-wide :class:`~repro.obs.metrics.MetricsRegistry` for kernel
metrics (``kernel.cache.hit`` / ``kernel.cache.miss`` /
``kernel.cache.store``, plus derivation timings) and one swappable
kernel tracer (default :data:`~repro.obs.trace.NULL_TRACER`, so untraced
derivations pay nothing).  ``python -m repro metrics`` renders the
kernel registry alongside the workload registry; ``python -m repro
cache warm --trace`` exports the kernel span forest.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

#: Counter names pre-registered so they are visible (at zero) before any
#: cache traffic happens — readers enumerate the registry.
_COUNTERS = ("kernel.cache.hit", "kernel.cache.miss", "kernel.cache.store")
_HISTOGRAMS = ("kernel.derive.seconds", "kernel.cache.load.seconds")

_registry = MetricsRegistry()
_tracer: Tracer = NULL_TRACER


def _prime(registry: MetricsRegistry) -> MetricsRegistry:
    for name in _COUNTERS:
        registry.counter(name)
    for name in _HISTOGRAMS:
        registry.histogram(name)
    return registry


_prime(_registry)


def kernel_metrics() -> MetricsRegistry:
    """The process-wide kernel metrics registry."""
    return _registry


def reset_kernel_metrics() -> MetricsRegistry:
    """Swap in a fresh registry (tests); returns the new one."""
    global _registry
    _registry = _prime(MetricsRegistry())
    return _registry


def kernel_tracer() -> Tracer:
    """The tracer kernel derivations and cache traffic report spans to."""
    return _tracer


def set_kernel_tracer(tracer: Tracer | None) -> None:
    """Install ``tracer`` for kernel spans (``None`` restores the no-op)."""
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
