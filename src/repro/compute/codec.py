"""JSON codec for kernel artifacts.

The persistent artifact cache stores events, relations, and
commutativity tables as JSON.  Invocation arguments and response values
are arbitrary hashables drawn from generator alphabets — in practice
strings, numbers, booleans, ``None``, tuples, and frozensets — so the
codec tags the containers (plain JSON atoms pass through untouched) and
sorts unordered collections by their canonical encoding, making every
serialization byte-deterministic regardless of hash randomization.
"""

from __future__ import annotations

import json
from typing import Any, Hashable, Iterable

from repro.dependency.relation import DependencyRelation
from repro.errors import ReproError
from repro.histories.events import Event, Invocation, Response


class CodecError(ReproError):
    """A value the artifact codec cannot round-trip."""


def canonical_json(payload: Any) -> str:
    """The one canonical rendering used for digests and byte comparisons."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


# -- hashable values ----------------------------------------------------------


def encode_value(value: Hashable) -> Any:
    """Encode one alphabet value as JSON (tagged containers, raw atoms)."""
    if isinstance(value, bool):  # before int: bool subclasses int
        return {"!": "bool", "v": bool(value)}
    if value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"!": "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        encoded = [encode_value(item) for item in value]
        return {"!": "frozenset", "v": sorted(encoded, key=canonical_json)}
    raise CodecError(f"cannot encode alphabet value of type {type(value).__name__}")


def decode_value(encoded: Any) -> Hashable:
    if isinstance(encoded, dict):
        tag = encoded.get("!")
        if tag == "bool":
            return bool(encoded["v"])
        if tag == "tuple":
            return tuple(decode_value(item) for item in encoded["v"])
        if tag == "frozenset":
            return frozenset(decode_value(item) for item in encoded["v"])
        raise CodecError(f"unknown value tag {tag!r}")
    return encoded


# -- events -------------------------------------------------------------------


def encode_invocation(invocation: Invocation) -> dict[str, Any]:
    return {
        "op": invocation.op,
        "args": [encode_value(arg) for arg in invocation.args],
    }


def decode_invocation(encoded: dict[str, Any]) -> Invocation:
    return Invocation(
        encoded["op"], tuple(decode_value(arg) for arg in encoded["args"])
    )


def encode_response(response: Response) -> dict[str, Any]:
    return {
        "kind": response.kind,
        "values": [encode_value(value) for value in response.values],
    }


def decode_response(encoded: dict[str, Any]) -> Response:
    return Response(
        encoded["kind"], tuple(decode_value(value) for value in encoded["values"])
    )


def encode_event(event: Event) -> dict[str, Any]:
    return {"inv": encode_invocation(event.inv), "res": encode_response(event.res)}


def decode_event(encoded: dict[str, Any]) -> Event:
    return Event(decode_invocation(encoded["inv"]), decode_response(encoded["res"]))


# -- relations and tables -----------------------------------------------------


def encode_relation(relation: DependencyRelation) -> list[Any]:
    """A dependency relation as a sorted list of ``[invocation, event]``."""
    encoded = [
        [encode_invocation(inv), encode_event(ev)] for inv, ev in relation.pairs
    ]
    return sorted(encoded, key=canonical_json)


def decode_relation(encoded: Iterable[Any]) -> DependencyRelation:
    return DependencyRelation(
        (decode_invocation(pair[0]), decode_event(pair[1])) for pair in encoded
    )


def encode_table(
    events: tuple[Event, ...], table: dict[tuple[Event, Event], bool]
) -> list[list[int]]:
    """A commutativity table as its non-commuting upper-triangle indices.

    The table is symmetric and overwhelmingly ``True``; only the
    refuted ``i <= j`` index pairs are stored.
    """
    refuted = []
    for i in range(len(events)):
        for j in range(i, len(events)):
            if not table[(events[i], events[j])]:
                refuted.append([i, j])
    return refuted


def decode_table(
    events: tuple[Event, ...], refuted: Iterable[Iterable[int]]
) -> dict[tuple[Event, Event], bool]:
    table: dict[tuple[Event, Event], bool] = {}
    for i, first in enumerate(events):
        for j in range(i, len(events)):
            table[(first, events[j])] = True
            table[(events[j], first)] = True
    for i, j in refuted:
        first, second = events[i], events[j]
        table[(first, second)] = False
        table[(second, first)] = False
    return table
