"""Derived kernel artifacts: one derivation, every consumer.

A :class:`TypeArtifacts` bundle holds everything the bounded searches
produce for one ``(type, bound)`` pair — the event alphabet, the minimal
static and dynamic dependency relations (Theorems 6 and 10), and the
full commutativity table the dynamic relation is assembled from (also
the conflict matrix the locking scheme uses).

:func:`artifacts_for` is the single entry point the catalog, the
comparison report, and the theorem battery all call.  It layers three
levels of reuse:

1. an in-process memo keyed by fingerprint, so one report run derives
   each type once no matter how many consumers ask;
2. the persistent :class:`~repro.compute.cache.ArtifactCache`, so
   repeated *runs* skip derivation entirely (the warm path);
3. on a true miss, one shared-pass derivation
   (:func:`derive_artifacts`), optionally sharded across processes.

Payloads round-trip through :mod:`repro.compute.codec` and the
canonical JSON text is byte-deterministic, which is what lets the
benchmark assert cold and warm runs produce *identical* artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.compute.cache import ArtifactCache, cache_enabled, default_cache
from repro.compute.codec import (
    canonical_json,
    decode_event,
    decode_relation,
    decode_table,
    encode_event,
    encode_relation,
    encode_table,
)
from repro.compute.fingerprint import SCHEMA_VERSION, type_fingerprint
from repro.compute.obs import kernel_metrics, kernel_tracer
from repro.compute.parallel import parallel_map, resolve_jobs
from repro.dependency.dynamic_dep import (
    commutativity_table,
    dependency_from_commutativity,
)
from repro.dependency.relation import DependencyRelation
from repro.dependency.static_dep import minimal_static_dependency
from repro.histories.events import Event
from repro.spec.datatype import SerialDataType
from repro.spec.enumerate import alphabets
from repro.spec.legality import LegalityOracle

#: In-process memo: fingerprint -> TypeArtifacts.  Lives for the process
#: (artifacts are immutable), cleared explicitly by tests.
_MEMORY: dict[str, "TypeArtifacts"] = {}


@dataclass(frozen=True)
class TypeArtifacts:
    """Everything the kernel derives for one ``(type, bound)`` pair."""

    type_name: str
    bound: int
    fingerprint: str
    events: tuple[Event, ...]
    static: DependencyRelation
    dynamic: DependencyRelation
    table: dict[tuple[Event, Event], bool]

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "type": self.type_name,
            "bound": self.bound,
            "fingerprint": self.fingerprint,
            "events": [encode_event(ev) for ev in self.events],
            "static": encode_relation(self.static),
            "refuted": encode_table(self.events, self.table),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TypeArtifacts":
        events = tuple(decode_event(ev) for ev in payload["events"])
        table = decode_table(events, payload["refuted"])
        return cls(
            type_name=payload["type"],
            bound=payload["bound"],
            fingerprint=payload["fingerprint"],
            events=events,
            static=decode_relation(payload["static"]),
            dynamic=dependency_from_commutativity(events, table),
            table=table,
        )

    def canonical_text(self) -> str:
        """The byte-deterministic rendering benchmarks compare."""
        return canonical_json(self.to_payload())


def derive_artifacts(
    datatype: SerialDataType,
    bound: int,
    oracle: LegalityOracle | None = None,
    *,
    jobs: int | None = None,
    fingerprint: str | None = None,
) -> TypeArtifacts:
    """One full derivation: alphabet, Theorem 6 search, shared-pass table."""
    fingerprint = fingerprint or type_fingerprint(datatype, bound)
    with kernel_tracer().span(
        "kernel.derive", type=datatype.name, bound=bound, fingerprint=fingerprint
    ):
        started = time.perf_counter()
        oracle = oracle or LegalityOracle(datatype)
        events, _ = alphabets(datatype, bound + 2, oracle, collect_responses=False)
        static = minimal_static_dependency(datatype, bound, oracle, events)
        table = commutativity_table(datatype, bound, oracle, events, jobs=jobs)
        dynamic = dependency_from_commutativity(events, table)
        kernel_metrics().histogram("kernel.derive.seconds").observe(
            time.perf_counter() - started
        )
    return TypeArtifacts(
        type_name=datatype.name,
        bound=bound,
        fingerprint=fingerprint,
        events=events,
        static=static,
        dynamic=dynamic,
        table=table,
    )


def artifacts_for(
    datatype: SerialDataType,
    bound: int = 3,
    oracle: LegalityOracle | None = None,
    *,
    jobs: int | None = None,
    cache: ArtifactCache | None | bool = None,
    refresh: bool = False,
) -> TypeArtifacts:
    """Memoized, cached artifacts for ``(datatype, bound)``.

    ``cache`` is tri-state: an explicit :class:`ArtifactCache`, ``False``
    to bypass the persistent layer (the in-process memo still applies),
    or ``None`` for the environment default (``REPRO_CACHE_DIR`` /
    ``REPRO_CACHE``).  ``refresh`` forces re-derivation and overwrites
    both layers.
    """
    fingerprint = type_fingerprint(datatype, bound)
    if not refresh:
        memoized = _MEMORY.get(fingerprint)
        if memoized is not None:
            return memoized

    store: ArtifactCache | None
    if cache is False:
        store = None
    elif cache is None or cache is True:
        store = default_cache() if cache_enabled() else None
    else:
        store = cache

    if store is not None and not refresh:
        payload = store.load(fingerprint)
        if payload is not None and payload.get("fingerprint") == fingerprint:
            artifacts = TypeArtifacts.from_payload(payload)
            _MEMORY[fingerprint] = artifacts
            return artifacts

    artifacts = derive_artifacts(
        datatype, bound, oracle, jobs=jobs, fingerprint=fingerprint
    )
    if store is not None:
        store.store(fingerprint, artifacts.to_payload())
    _MEMORY[fingerprint] = artifacts
    return artifacts


def clear_memory_cache() -> None:
    """Drop the in-process memo (tests and benchmarks)."""
    _MEMORY.clear()


# -- catalog fan-out ----------------------------------------------------------


def _catalog_worker(
    item: tuple[SerialDataType, int, bool],
) -> dict[str, Any]:
    """Process-pool unit: derive (or cache-load) one type, ship the payload."""
    datatype, bound, refresh = item
    return artifacts_for(datatype, bound, refresh=refresh).to_payload()


def derive_catalog(
    plan: Sequence[tuple[SerialDataType, int]],
    *,
    jobs: int | None = None,
    refresh: bool = False,
) -> list[TypeArtifacts]:
    """Artifacts for every ``(type, bound)`` in ``plan``.

    With ``jobs > 1`` the *catalog* is the parallel grain — one worker
    per type — which beats sharding any single type's sweep because the
    types differ wildly in cost.  Workers write the shared persistent
    cache; the coordinator rebuilds its in-process memo from the shipped
    payloads, so a follow-up ``artifacts_for`` in this process is free.
    """
    jobs = resolve_jobs(jobs)
    work = [(datatype, bound, refresh) for datatype, bound in plan]
    payloads, _parallel = parallel_map(_catalog_worker, work, jobs)
    results = []
    for payload in payloads:
        artifacts = TypeArtifacts.from_payload(payload)
        _MEMORY[artifacts.fingerprint] = artifacts
        results.append(artifacts)
    return results


def default_warm_plan() -> list[tuple[SerialDataType, int]]:
    """The ``(type, bound)`` pairs the stock reports and tests consume.

    The standard catalog runs at bound 3 (Directory at 2 — its state
    space explodes combinatorially and the catalog never asks deeper),
    plus the bound-4 Queue and PROM derivations the theorem battery and
    the Figure 1-2 comparison use.
    """
    from repro.types import Directory, PROM, Queue, standard_types

    plan: list[tuple[SerialDataType, int]] = []
    for datatype in standard_types():
        bound = 2 if isinstance(datatype, Directory) else 3
        plan.append((datatype, bound))
    plan.append((Queue(), 4))
    plan.append((PROM(), 4))
    return plan
