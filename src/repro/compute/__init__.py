"""The theory-kernel compute layer: derive once, reuse everywhere.

The bounded model-checking kernel (Theorems 6 and 10 searches,
commutativity tables, event alphabets) is pure: its outputs are
functions of a type's bounded behavior and nothing else.  This package
exploits that purity three ways:

* :mod:`repro.compute.artifacts` — one shared derivation per
  ``(type, bound)``, memoized in-process and persisted to a
  content-addressed on-disk cache (:mod:`repro.compute.cache`) keyed by
  a behavioral fingerprint (:mod:`repro.compute.fingerprint`);
* :mod:`repro.compute.parallel` — multiprocess fan-out across the type
  catalog and across history-universe shards, with a serial fallback
  that is always semantically identical;
* :mod:`repro.compute.obs` — ``kernel.cache.*`` metrics and derivation
  spans surfaced through ``python -m repro metrics`` and the trace
  exporters.

``python -m repro cache {stats,warm,clear}`` administers the persistent
store from the command line.
"""

from repro.compute.artifacts import (
    TypeArtifacts,
    artifacts_for,
    clear_memory_cache,
    default_warm_plan,
    derive_artifacts,
    derive_catalog,
)
from repro.compute.cache import ArtifactCache, cache_enabled, default_cache
from repro.compute.fingerprint import SCHEMA_VERSION, type_fingerprint
from repro.compute.obs import (
    kernel_metrics,
    kernel_tracer,
    reset_kernel_metrics,
    set_kernel_tracer,
)
from repro.compute.parallel import available_cpus, parallel_map, resolve_jobs

__all__ = [
    "TypeArtifacts",
    "artifacts_for",
    "clear_memory_cache",
    "default_warm_plan",
    "derive_artifacts",
    "derive_catalog",
    "ArtifactCache",
    "cache_enabled",
    "default_cache",
    "SCHEMA_VERSION",
    "type_fingerprint",
    "kernel_metrics",
    "kernel_tracer",
    "reset_kernel_metrics",
    "set_kernel_tracer",
    "available_cpus",
    "parallel_map",
    "resolve_jobs",
]
