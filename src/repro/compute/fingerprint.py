"""Content-addressed fingerprints for serial data types.

A cached artifact is only valid while the *behavior* of its type is
unchanged — renaming a class or reformatting its source must not
invalidate the cache, while editing ``apply`` must.  So the fingerprint
digests a **behavior probe**: a breadth-first unfolding of the type's
transition system from the initial state, out to the same depth the
kernel's bounded searches explore.  Two types with identical probes are
indistinguishable to every derivation the cache stores, so sharing an
artifact between them is sound by construction.

Determinism notes (the digest must be stable across processes and hash
seeds):

* invocations are explored in ``str``-sorted order;
* states get consecutive integer ids in discovery order, which is fixed
  because every nondeterministic ``apply`` expansion is sorted by its
  canonically-encoded ``(response, next-state)`` pair;
* the payload is rendered with :func:`~repro.compute.codec.canonical_json`
  before hashing.

The digest also covers the search ``bound``, the probe ``depth``, and
:data:`SCHEMA_VERSION`, so deepening a search or changing the artifact
layout forces a re-derivation rather than serving stale payloads.
"""

from __future__ import annotations

import hashlib
from typing import Any, Hashable

from repro.compute.codec import CodecError, canonical_json, encode_invocation, encode_response
from repro.spec.datatype import SerialDataType

#: Bump when the artifact payload layout changes; every cached entry is
#: invalidated because the version participates in the fingerprint.
SCHEMA_VERSION = 1


def _state_sort_key(canonical_state: Hashable) -> str:
    """A deterministic tiebreak for sibling next-states.

    Built-in types have canonically encodable states; a custom type with
    exotic states falls back to ``repr``, which is stable for anything
    with a value-based ``__repr__``.
    """
    try:
        from repro.compute.codec import encode_value

        return canonical_json(encode_value(canonical_state))
    except CodecError:
        return repr(canonical_state)


def behavior_probe(datatype: SerialDataType, depth: int) -> dict[str, Any]:
    """The transition system reachable within ``depth`` steps, normalized."""
    invocations = sorted(datatype.invocations(), key=str)
    initial = datatype.initial_state()
    ids: dict[Hashable, int] = {datatype.canonical(initial): 0}
    representatives = {0: initial}
    frontier = [0]
    transitions: list[list[Any]] = []

    for _ in range(depth):
        if not frontier:
            break
        next_frontier: list[int] = []
        for sid in frontier:
            state = representatives[sid]
            for inv in invocations:
                expansions = sorted(
                    (
                        (
                            canonical_json(encode_response(res)),
                            _state_sort_key(datatype.canonical(nxt)),
                            res,
                            nxt,
                        )
                        for res, nxt in datatype.apply(state, inv)
                    ),
                    key=lambda item: (item[0], item[1]),
                )
                encoded_outs: list[list[Any]] = []
                for _res_key, _state_key, res, nxt in expansions:
                    key = datatype.canonical(nxt)
                    nid = ids.get(key)
                    if nid is None:
                        nid = len(ids)
                        ids[key] = nid
                        representatives[nid] = nxt
                        next_frontier.append(nid)
                    encoded_outs.append([encode_response(res), nid])
                transitions.append([sid, encode_invocation(inv), encoded_outs])
        frontier = next_frontier

    return {
        "alphabet": [encode_invocation(inv) for inv in invocations],
        "depth": depth,
        "states": len(ids),
        "transitions": transitions,
    }


def type_fingerprint(
    datatype: SerialDataType, bound: int, depth: int | None = None
) -> str:
    """The content address for ``datatype``'s artifacts at ``bound``.

    ``depth`` defaults to ``bound + 2``, matching the deepest history
    any bounded derivation at this bound replays (alphabet extraction
    probes ``bound + 2`` events; Theorem 6/10 checks insert at most two
    events into a ``bound``-length history).
    """
    depth = bound + 2 if depth is None else depth
    payload = {
        "schema": SCHEMA_VERSION,
        "bound": bound,
        "probe": behavior_probe(datatype, depth),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()
    return digest
