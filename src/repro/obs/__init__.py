"""repro.obs — structured observability for the replication stack.

Tracing (:mod:`repro.obs.trace`), metric instruments
(:mod:`repro.obs.metrics`), kernel profiling
(:mod:`repro.obs.profile`), trace exporters (:mod:`repro.obs.export`),
and the online correctness auditor (:mod:`repro.obs.audit`, with seeded
protocol mutations for fault injection in :mod:`repro.obs.mutations`).
The running system (`repro.sim`, `repro.replication`, `repro.txn`) is
instrumented against these interfaces with the no-op
:data:`NULL_TRACER` as default, so tracing is strictly opt-in: pass a
real :class:`Tracer` to
:func:`repro.replication.cluster.build_cluster` (or the ``python -m
repro trace`` / ``audit`` CLI) to capture span trees.
"""

from repro.obs.audit import (
    Auditor,
    AuditReport,
    Forensics,
    InvariantMonitor,
    Violation,
    default_monitors,
)
from repro.obs.export import (
    export,
    parse_jsonl,
    render_tree,
    to_chrome_trace,
    to_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.profile import CallbackStats, KernelProfiler, callback_name
from repro.obs.trace import (
    NULL_SPAN,
    NULL_SPAN_CONTEXT,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceListener,
    Tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "TraceListener",
    "NullTracer",
    "NULL_SPAN",
    "NULL_SPAN_CONTEXT",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "KernelProfiler",
    "CallbackStats",
    "callback_name",
    "export",
    "to_jsonl",
    "parse_jsonl",
    "render_tree",
    "to_chrome_trace",
    "Auditor",
    "AuditReport",
    "Forensics",
    "InvariantMonitor",
    "Violation",
    "default_monitors",
]
