"""Metric instruments: counters, gauges, and simulated-time histograms.

A :class:`MetricsRegistry` is a namespace of named instruments that
instrumented code creates lazily (``registry.counter("rpc.sent")``),
so layers never coordinate about what exists — readers enumerate
whatever showed up.  :class:`Histogram` keeps its raw samples (runs are
small enough that exact percentiles beat bucketed approximations) and
reports p50/p95/p99, which is what latency distributions with timeout
tails need — a bare mean hides exactly the behaviour the availability
experiments are about.
"""

from __future__ import annotations

import math
from typing import Any, Iterable


def percentile(samples: Iterable[float], p: float) -> float:
    """The ``p``-th percentile (0 ≤ p ≤ 100) by linear interpolation.

    NaN on an empty sample set, matching the recorder's convention for
    untouched operations.
    """
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Counter:
    """A monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, live sites, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A distribution of simulated-time samples with exact percentiles."""

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def merge(self, other: "Histogram") -> None:
        self._samples.extend(other._samples)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[float, ...]:
        return tuple(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return self.total / len(self._samples) if self._samples else float("nan")

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    def quantile(self, p: float) -> float:
        self._ensure_sorted()
        return percentile(self._samples, p)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def p50(self) -> float:
        return self.quantile(50)

    @property
    def p95(self) -> float:
        return self.quantile(95)

    @property
    def p99(self) -> float:
        return self.quantile(99)

    def summary(self) -> dict[str, float]:
        """The percentile summary the satellite reports are built from.

        An empty histogram summarizes to zeros rather than NaN: summaries
        feed JSON exports and fixed-width tables, where NaN either breaks
        strict parsers or renders as noise.  Callers that need to
        distinguish "no samples" from "all-zero samples" have ``count``.
        (The ``mean``/``max``/``quantile`` properties keep the NaN
        convention — there, NaN is the honest answer.)
        """
        if not self._samples:
            return {
                "count": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class MetricsRegistry:
    """Lazily-created named instruments, one flat namespace."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        self._check_free(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name))

    def _check_free(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(f"metric {name!r} already exists with another type")

    # -- enumeration ----------------------------------------------------------

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """A fixed-width text dump of the whole registry."""
        lines: list[str] = []
        if self._counters:
            lines.append("counters:")
            for name, counter in sorted(self._counters.items()):
                lines.append(f"  {name:<40} {counter.value:>12}")
        if self._gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self._gauges.items()):
                lines.append(f"  {name:<40} {gauge.value:>12.3f}")
        if self._histograms:
            lines.append("histograms:")
            header = (
                f"  {'name':<40} {'count':>7} {'mean':>9} {'p50':>9} "
                f"{'p95':>9} {'p99':>9} {'max':>9}"
            )
            lines.append(header)
            for name, hist in sorted(self._histograms.items()):
                summary = hist.summary()
                lines.append(
                    f"  {name:<40} {int(summary['count']):>7} "
                    f"{summary['mean']:>9.3f} {summary['p50']:>9.3f} "
                    f"{summary['p95']:>9.3f} {summary['p99']:>9.3f} "
                    f"{summary['max']:>9.3f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


def retention_gauges(registry: MetricsRegistry, tracer=None) -> dict[str, int]:
    """Stamp the span-retention gauges into ``registry``.

    With a tracer, reads that tracer's ``retained_spans`` /
    ``peak_retained``; without one, falls back to the process-wide
    aggregates (every live tracer plus the historical peak), which is
    what benchmark environment blocks want.  Returns the values stamped
    as ``{"obs.retained_spans": ..., "obs.peak_retained": ...}``.
    """
    if tracer is not None:
        retained = int(getattr(tracer, "retained_spans", 0))
        peak = int(getattr(tracer, "peak_retained", 0))
    else:
        from repro.obs.trace import process_peak_retained, process_retained_spans

        retained = process_retained_spans()
        peak = process_peak_retained()
    registry.gauge("obs.retained_spans").set(retained)
    registry.gauge("obs.peak_retained").set(peak)
    return {"obs.retained_spans": retained, "obs.peak_retained": peak}
