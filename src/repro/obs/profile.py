"""Profiling hooks for the simulation kernel.

A :class:`KernelProfiler` plugged into the
:class:`~repro.sim.kernel.Simulator` accounts, per callback, for wall
time spent (the real cost of running the simulation) alongside the
simulated times at which callbacks fire, and samples event-queue depth
at each dispatch.  This answers "where does a run actually spend its
time" without touching any of the code being profiled — the kernel
calls :meth:`record` once per dispatched event, and only when a
profiler is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import Histogram


def callback_name(callback: Callable) -> str:
    """A stable human-readable label for a scheduled callback."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        module = getattr(callback, "__module__", "")
        short = module.rsplit(".", 1)[-1] if module else ""
        return f"{short}.{qualname}" if short else qualname
    return type(callback).__name__


@dataclass
class CallbackStats:
    """Accumulated cost of one callback identity."""

    name: str
    calls: int = 0
    wall_seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        return 1e6 * self.wall_seconds / self.calls if self.calls else float("nan")


@dataclass
class KernelProfiler:
    """Per-callback wall-time accounting plus queue-depth sampling."""

    stats: dict[str, CallbackStats] = field(default_factory=dict)
    queue_depth: Histogram = field(
        default_factory=lambda: Histogram("kernel.queue_depth")
    )
    dispatched: int = 0

    def record(
        self,
        callback: Callable,
        wall_seconds: float,
        queue_depth: int,
        sim_time: float,
    ) -> None:
        """Called by the kernel once per dispatched event."""
        name = callback_name(callback)
        entry = self.stats.get(name)
        if entry is None:
            entry = self.stats[name] = CallbackStats(name)
        entry.calls += 1
        entry.wall_seconds += wall_seconds
        self.queue_depth.observe(float(queue_depth))
        self.dispatched += 1

    @property
    def total_wall_seconds(self) -> float:
        return sum(entry.wall_seconds for entry in self.stats.values())

    def report(self) -> str:
        """Fixed-width cost table, most expensive callbacks first."""
        if not self.stats:
            return "(no events dispatched under the profiler)"
        header = (
            f"{'callback':<48} {'calls':>8} {'wall ms':>10} "
            f"{'mean µs':>9} {'share':>7}"
        )
        lines = [header, "-" * len(header)]
        total = self.total_wall_seconds or float("nan")
        ranked = sorted(
            self.stats.values(), key=lambda s: s.wall_seconds, reverse=True
        )
        for entry in ranked:
            lines.append(
                f"{entry.name:<48} {entry.calls:>8} "
                f"{1e3 * entry.wall_seconds:>10.3f} {entry.mean_us:>9.2f} "
                f"{100 * entry.wall_seconds / total:>6.1f}%"
            )
        depth = self.queue_depth.summary()
        lines.append(
            f"queue depth: p50={depth['p50']:.0f} p95={depth['p95']:.0f} "
            f"max={depth['max']:.0f} over {self.dispatched} dispatches"
        )
        return "\n".join(lines)
