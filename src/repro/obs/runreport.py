"""Machine-readable run artifacts: ``plan.json`` + ``report.json``.

Every workload-shaped CLI entry point (``report``, ``bench``, ``audit``,
``chaos``, ``soak``) can emit a sans-style artifact pair into a
directory given by ``--artifacts DIR``:

* ``plan.json``   — what was *about to run*: the subcommand, the
  workload shape (seed, sites, objects, placement, transactions), the
  fault schedule, and the observability configuration (retention mode,
  window, streaming/deep audit) — everything needed to re-run the
  experiment;
* ``report.json`` — what *happened*: verdicts, violation forensics,
  outcome tallies, wall/sim timings, and the retained-memory high-water
  marks (``obs.retained_spans`` / ``obs.peak_retained``).

Both files are JSON with sorted keys and a fixed two-space indent, so
diffs between runs are stable and tooling can treat them as canonical.
Each carries an ``artifact`` discriminator and a schema ``version`` so
downstream consumers can dispatch without guessing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

__all__ = ["make_plan", "make_report", "write_run_artifacts"]

#: Bumped when the envelope shape changes incompatibly.
ARTIFACT_VERSION = 1


def make_plan(command: str, **sections: Any) -> dict[str, Any]:
    """The ``plan.json`` envelope: intent, before the run."""
    plan: dict[str, Any] = {
        "artifact": "plan",
        "version": ARTIFACT_VERSION,
        "command": command,
    }
    plan.update(sections)
    return plan


def make_report(
    command: str, *, ok: bool, **sections: Any
) -> dict[str, Any]:
    """The ``report.json`` envelope: outcome, after the run."""
    report: dict[str, Any] = {
        "artifact": "report",
        "version": ARTIFACT_VERSION,
        "command": command,
        "ok": bool(ok),
    }
    report.update(sections)
    return report


def write_run_artifacts(
    directory: str,
    plan: Mapping[str, Any],
    report: Mapping[str, Any],
) -> tuple[str, str]:
    """Write ``plan.json`` and ``report.json`` under ``directory``.

    Creates the directory if needed; returns the two paths written.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, payload in (("plan.json", plan), ("report.json", report)):
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths[0], paths[1]
