"""Hierarchical span tracing over simulated time.

A :class:`Tracer` records what the replicated system *did* as a tree of
spans — transaction → operation → quorum phase → per-repository RPC —
each stamped with simulated start/end times and structured attributes
(quorum used, view timestamp, conflict kind).  Instrumented layers hold
a tracer reference and call it unconditionally; the default
:data:`NULL_TRACER` makes every call a no-op so untraced runs pay
essentially nothing.

Two usage styles:

* ``with tracer.span("operation", kind="operation", op="Enq") as span:``
  — a context-managed span.  Nested ``span()`` calls parent themselves
  under the innermost open span; an exception escaping the block closes
  the span with an outcome classified from the exception type
  (``Timeout`` → ``timeout``, ``ConflictError`` → ``conflict``, …).
* ``span = tracer.start_span(...)`` / ``tracer.end_span(span, outcome)``
  — a manual span for lifetimes that cross call boundaries, such as a
  transaction that begins in one call and commits in another.  Manual
  spans never join the context stack; children name them explicitly via
  ``parent=``.

Time comes from whatever clock the tracer is bound to (normally the
simulator, via :meth:`Tracer.bind_clock`), so timestamps are simulated
time, deterministic per seed.

**Span retention** is a policy, not a given.  Listeners (the streaming
auditor, the stream exporters) see *every* span regardless; retention
only controls what the tracer itself keeps for after-the-fact
inspection (``spans``, ``walk``, forensics):

* ``retention="all"`` — keep everything (the default; exact PR-1
  behavior, memory grows with the run);
* ``retention="ring"`` — keep the last ``window`` spans in a ring
  buffer: O(window) memory, enough tail for violation forensics;
* ``retention="consume"`` — release each span as soon as its close has
  been streamed to the listeners; only *open* spans are retained, so a
  pure streaming consumer pays O(concurrent spans).

``retained_spans`` / ``peak_retained`` expose the live count and its
high-water mark; :func:`process_peak_retained` tracks the largest
single-tracer high-water mark process-wide so benchmark environment
stamps can prove a run stayed bounded.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator


#: Exception-class-name → span outcome, used when a ``with tracer.span``
#: block is exited by an exception.  Names (not classes) keep this module
#: free of imports from the layers it observes.
_OUTCOME_BY_EXCEPTION = {
    "Timeout": "timeout",
    "UnavailableError": "unavailable",
    "ConflictError": "conflict",
    "TransactionAborted": "aborted",
    # Read-quorum-only fallback (repro.resilience): the span closes
    # "degraded", which history-capture monitors deliberately skip —
    # a degraded read is outside the transaction's logged history.
    "DegradedOperation": "degraded",
}

#: Valid span-retention policies (see the module docstring).
RETENTION_MODES = ("all", "ring", "consume")

#: Default ring-buffer size when ``retention="ring"`` without a window.
DEFAULT_WINDOW = 4096

#: Live (weakly held) tracers, for process-wide retention accounting.
_LIVE_TRACERS: "weakref.WeakSet[Tracer]" = weakref.WeakSet()

#: Largest number of spans any single tracer retained at once.
_PROCESS_PEAK_RETAINED = 0


def process_retained_spans() -> int:
    """Spans currently retained across every live tracer in the process."""
    return sum(tracer.retained_spans for tracer in _LIVE_TRACERS)


def process_peak_retained() -> int:
    """The largest span count any single tracer has retained at once.

    This is the number bounded-memory claims are made about: a soak ran
    with a ring window of W iff this never exceeds W (plus whatever an
    ``retention="all"`` tracer elsewhere in the process retained).
    """
    return _PROCESS_PEAK_RETAINED


def reset_process_peak() -> None:
    """Forget the process-wide high-water mark (test isolation)."""
    global _PROCESS_PEAK_RETAINED
    _PROCESS_PEAK_RETAINED = 0


@dataclass
class Span:
    """One timed node in the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    #: Coarse role: "transaction", "operation", "quorum", "rpc", "event", ...
    kind: str
    start: float
    end: float | None = None
    #: Site the span executed at, when it has a natural home site.
    site: int | None = None
    outcome: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes (quorum membership, view timestamp, ...)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "site": self.site,
            "outcome": self.outcome,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Span":
        return Span(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            kind=data["kind"],
            start=data["start"],
            end=data["end"],
            site=data["site"],
            outcome=data["outcome"],
            attrs=dict(data["attrs"]),
        )


class _CountingClock:
    """Fallback clock for tracers not bound to a simulator: 0, 1, 2, ..."""

    def __init__(self) -> None:
        self.now = 0.0

    def tick(self) -> float:
        self.now += 1.0
        return self.now


class _SpanContext:
    """Context manager pushing one span onto the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        # The guard covers Tracer.clear() inside the block: the stack is
        # already empty then, and the span was dropped with the epoch.
        if self._tracer._stack:
            self._tracer._stack.pop()
        outcome = "ok"
        if exc_type is not None:
            outcome = _OUTCOME_BY_EXCEPTION.get(exc_type.__name__, "error")
            fatal = getattr(exc, "fatal", None)
            if fatal is not None:
                self._span.annotate(conflict_kind="fatal" if fatal else "wait")
        self._tracer.end_span(self._span, outcome=outcome)
        return False


class _ParentContext:
    """Context manager making an open span the implicit parent.

    Unlike :class:`_SpanContext` it does not close the span on exit:
    the batched RPC path opens per-probe spans manually (they outlive
    the enclosing Python frame) but still wants repository events
    emitted while a probe's handler runs to parent under that probe.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self._tracer._stack:
            self._tracer._stack.pop()
        return False


class TraceListener:
    """Live tap on a tracer's span stream.

    Listeners see every span twice: once when it opens (attributes may
    still be incomplete) and once when it closes (attributes final).
    Point events produced by :meth:`Tracer.event` arrive as a single
    start + end pair.  :meth:`Tracer.clear` announces itself through
    ``on_clear`` so stateful listeners drop per-epoch state instead of
    carrying it across the reset.  The online auditor
    (:mod:`repro.obs.audit`) is the principal listener; anything with
    these methods qualifies.
    """

    def on_span_start(self, span: Span) -> None:  # pragma: no cover - interface
        pass

    def on_span_end(self, span: Span) -> None:  # pragma: no cover - interface
        pass

    def on_clear(self) -> None:  # pragma: no cover - interface
        pass


class Tracer:
    """Records spans and point events against a simulated clock."""

    #: ``False`` on the null tracer; instrumentation may consult this to
    #: skip expensive attribute computation when nobody is listening.
    enabled: bool = True

    def __init__(
        self,
        clock: Any | None = None,
        *,
        retention: str = "all",
        window: int | None = None,
    ):
        #: Anything with a ``now`` attribute in simulated time units
        #: (normally the :class:`~repro.sim.kernel.Simulator`).
        self._clock = clock if clock is not None else _CountingClock()
        if retention not in RETENTION_MODES:
            raise ValueError(
                f"unknown retention {retention!r}; pick one of {RETENTION_MODES}"
            )
        if window is not None and window < 1:
            raise ValueError("window must be a positive span count")
        self.retention = retention
        #: Effective ring size (``None`` unless ``retention="ring"``).
        self.window = (
            (window if window is not None else DEFAULT_WINDOW)
            if retention == "ring"
            else None
        )
        if retention == "ring":
            self._spans: Any = deque(maxlen=self.window)
        elif retention == "consume":
            # Insertion-ordered map of *open* spans; closed spans are
            # released the moment listeners have consumed them.
            self._spans = {}
        else:
            self._spans = []
        #: High-water mark of :attr:`retained_spans` (survives clear()).
        self.peak_retained = 0
        self._stack: list[Span] = []
        self._next_id = 1
        self._listeners: list[TraceListener] = []
        if type(self).enabled:
            _LIVE_TRACERS.add(self)

    def bind_clock(self, clock: Any) -> None:
        """Read timestamps from ``clock.now`` from here on."""
        self._clock = clock

    # -- listeners ----------------------------------------------------------

    def add_listener(self, listener: TraceListener) -> None:
        """Stream span starts/ends to ``listener`` as they happen."""
        self._listeners.append(listener)

    def remove_listener(self, listener: TraceListener) -> None:
        """Detach a listener registered with :meth:`add_listener`."""
        self._listeners.remove(listener)

    @property
    def now(self) -> float:
        return self._clock.now

    # -- span lifecycle -----------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        kind: str = "span",
        parent: Span | None = None,
        site: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span (manual close via :meth:`end_span`).

        ``parent=None`` parents under the innermost context-managed span,
        if any; pass an explicit parent to cross call boundaries.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind=kind,
            start=self._clock.now,
            site=site,
            attrs=attrs,
        )
        self._next_id += 1
        if self.retention == "consume":
            self._spans[span.span_id] = span
        else:
            self._spans.append(span)
        count = len(self._spans)
        if count > self.peak_retained:
            self.peak_retained = count
            global _PROCESS_PEAK_RETAINED
            if count > _PROCESS_PEAK_RETAINED:
                _PROCESS_PEAK_RETAINED = count
        for listener in self._listeners:
            listener.on_span_start(span)
        return span

    def end_span(self, span: Span, outcome: str = "ok") -> None:
        if span.end is None:
            span.end = self._clock.now
            span.outcome = outcome
            for listener in self._listeners:
                listener.on_span_end(span)
            if self.retention == "consume":
                self._spans.pop(span.span_id, None)

    def span(
        self,
        name: str,
        *,
        kind: str = "span",
        parent: Span | None = None,
        site: int | None = None,
        **attrs: Any,
    ) -> _SpanContext:
        """Context-managed span; joins the implicit parent stack."""
        return _SpanContext(
            self, self.start_span(name, kind=kind, parent=parent, site=site, **attrs)
        )

    def under(self, span: Span) -> _ParentContext:
        """Make ``span`` the implicit parent for the ``with`` body.

        The span is left open on exit; close it with :meth:`end_span`.
        """
        return _ParentContext(self, span)

    def event(self, name: str, *, site: int | None = None, **attrs: Any) -> Span:
        """A point-in-time marker (crash, recovery, async delivery, ...)."""
        span = self.start_span(name, kind="event", site=site, **attrs)
        span.end = span.start
        for listener in self._listeners:
            listener.on_span_end(span)
        if self.retention == "consume":
            self._spans.pop(span.span_id, None)
        return span

    # -- inspection ---------------------------------------------------------

    def _retained(self) -> Any:
        """The retained spans as an iterable, regardless of store shape."""
        if self.retention == "consume":
            return self._spans.values()
        return self._spans

    @property
    def retained_spans(self) -> int:
        """How many spans the tracer currently holds (policy-dependent)."""
        return len(self._spans)

    @property
    def spans(self) -> tuple[Span, ...]:
        """Retained spans in creation order (open spans included)."""
        return tuple(self._retained())

    def finished_spans(self) -> tuple[Span, ...]:
        return tuple(span for span in self._retained() if span.finished)

    def children_of(self, span: Span | None) -> tuple[Span, ...]:
        parent_id = None if span is None else span.span_id
        return tuple(s for s in self._retained() if s.parent_id == parent_id)

    def roots(self) -> tuple[Span, ...]:
        """Spans with no retained parent, in start order."""
        ids = {span.span_id for span in self._retained()}
        return tuple(
            span
            for span in self._retained()
            if span.parent_id is None or span.parent_id not in ids
        )

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) pairs over the retained forest."""
        by_parent: dict[int | None, list[Span]] = {}
        ids = {span.span_id for span in self._retained()}
        for span in self._retained():
            key = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(key, []).append(span)

        def visit(parent_key: int | None, depth: int) -> Iterator[tuple[Span, int]]:
            for span in by_parent.get(parent_key, ()):
                yield span, depth
                yield from visit(span.span_id, depth + 1)

        yield from visit(None, 0)

    def clear(self) -> None:
        """Drop retained spans and reset the context stack.

        Span ids keep counting up (a cleared tracer never reissues an
        id) and ``peak_retained`` keeps its high-water mark.  Listeners
        are told via :meth:`TraceListener.on_clear` so stateful
        consumers reset per-epoch state rather than checking post-clear
        spans against a forgotten past.
        """
        self._spans.clear()
        self._stack.clear()
        for listener in self._listeners:
            listener.on_clear()


class _NullSpan(Span):
    """The one span instance NullTracer hands out; swallows annotations."""

    def __init__(self) -> None:
        super().__init__(span_id=0, parent_id=None, name="", kind="null", start=0.0)

    def annotate(self, **attrs: Any) -> "Span":
        return self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer(Tracer):
    """A tracer that records nothing — the zero-overhead default.

    ``span`` returns the process-wide :data:`NULL_SPAN_CONTEXT`
    singleton, so a disabled tracer allocates nothing per call: every
    ``with tracer.span(...)`` on the hot RPC path reuses one shared
    context manager instead of constructing a fresh object per probe.
    """

    enabled = False

    def bind_clock(self, clock: Any) -> None:
        pass

    def start_span(self, name: str, **_kw: Any) -> Span:
        return NULL_SPAN

    def end_span(self, span: Span, outcome: str = "ok") -> None:
        pass

    def span(self, name: str, **_kw: Any) -> _NullSpanContext:
        return NULL_SPAN_CONTEXT

    def under(self, span: Span) -> _NullSpanContext:  # type: ignore[override]
        return NULL_SPAN_CONTEXT

    def event(self, name: str, **_kw: Any) -> Span:
        return NULL_SPAN


#: Shared no-op span, span-context, and tracer instances.
NULL_SPAN = _NullSpan()
NULL_SPAN_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()
