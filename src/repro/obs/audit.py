"""The online correctness auditor: live histories, invariants, forensics.

PR 1 gave the replication stack *latency* observability; this module
watches *correctness*.  An :class:`Auditor` attaches to a cluster's
:class:`~repro.obs.trace.Tracer` as a live listener and, as spans close,
reconstructs each replicated object's behavioral history from the event
stream — the same :class:`~repro.replication.object.HistoryRecorder`
form the runtime keeps — while a pluggable set of
:class:`InvariantMonitor` values checks the paper's invariants online:

* **quorum-intersection** — every quorum the front-ends actually use is
  a quorum of the coteries declared when auditing started, and every
  observed initial/final quorum pair that the object's dependency
  relation requires to intersect really does (paper, Section 3.2: the
  intersection relation must contain an atomic dependency relation);
* **lock-discipline** — synchronization state holds every executed
  event until the owning transaction commits or aborts (2PL for the
  dynamic scheme, dependency locks for hybrid);
* **timestamp-order** — hybrid commit timestamps respect commit order:
  each commit timestamp follows the transaction's begin timestamp and
  the previous commit (Definition 3's commit-time serialization order);
* **log-consistency** — replica logs agree: across every repository, at
  most one ``(action, event)`` pair per Lamport timestamp (replicated
  logs are set unions ordered by timestamp, so replicas may lag but
  never conflict);
* **history-capture** — the auditor's live-captured history equals the
  runtime recorder's (the observability path does not drift from the
  system of record);
* **one-copy-serializability** — at end of run, each object's committed
  actions serialized in its scheme's order (begin order for static,
  commit order for hybrid/dynamic) form a legal serial history of the
  object's serial data type, via :class:`~repro.spec.legality.LegalityOracle`
  and :func:`~repro.histories.serialization.serialize`;
* **genuine-partial-replication** — under a sharded keyspace, no site
  ever logs, reads, or acks an operation for a shard it does not hold
  (Sutra & Shapiro's genuineness criterion, checked against the
  cluster's compiled placement; inert on fully hand-wired clusters).

Violations are first-class observability artifacts: each carries the
offending span subtree and a ring buffer of recent point events
(:class:`Forensics`), renders as a forensic report, increments
``audit.violations.*`` counters in a :class:`~repro.obs.metrics.MetricsRegistry`,
and is marked in the trace itself as an ``audit.violation`` event so it
exports alongside JSONL/Chrome traces.

**Streaming vs deep mode.**  The auditor runs in one of two modes:

* ``mode="deep"`` (default) — every monitor, including the two that
  need the *full* run history (history-capture and one-copy
  serializability).  Memory grows with the run; right for tier-1
  workloads and forensic investigation.
* ``mode="streaming"`` — the five online monitors rewritten as
  streaming folds over the span stream with per-object sliding windows
  (:func:`streaming_monitors`).  State is O(window), independent of run
  length, so auditing rides along a million-op soak at full speed.  The
  per-monitor window-guarantee table (what a window of W catches versus
  provably misses) lives in ``docs/OBSERVABILITY.md``.

On identical span streams the two modes produce byte-identical
verdicts for the five streaming invariants
(:meth:`AuditReport.verdict` with :data:`STREAMING_INVARIANTS`) —
pinned by the ``pytest -m streaming`` suite.

Usage::

    tracer = Tracer()
    cluster = build_cluster(3, seed=0, tracer=tracer)
    ...
    auditor = Auditor(cluster)        # attaches to cluster.tracer
    ...run the workload...
    report = auditor.finish()         # detaches; runs end-of-run checks
    assert report.ok, report.render()
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.histories.serialization import serialize
from repro.obs.export import render_tree
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceListener, Tracer
from repro.txn.ids import ActionId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.replication.object import ReplicatedObject
    from repro.txn.ids import Transaction


# -- violations and forensics ------------------------------------------------


@dataclass(frozen=True)
class Forensics:
    """What the auditor saw when an invariant broke.

    ``spans`` is the offending span's subtree (root first, depth-first,
    truncated to :data:`SUBTREE_LIMIT` nodes); ``recent_events`` is the
    tail of the point-event stream (crashes, partitions, repository
    reads/writes) leading up to the violation.
    """

    spans: tuple[Span, ...] = ()
    recent_events: tuple[Span, ...] = ()
    truncated: bool = False

    def render(self, indent: str = "  ") -> str:
        lines: list[str] = []
        if self.spans:
            lines.append(f"{indent}offending span subtree:")
            for line in render_tree(self.spans).splitlines():
                lines.append(f"{indent}  {line}")
            if self.truncated:
                lines.append(f"{indent}  ... (subtree truncated)")
        if self.recent_events:
            lines.append(f"{indent}recent events:")
            for line in render_tree(self.recent_events).splitlines():
                lines.append(f"{indent}  {line}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spans": [span.to_dict() for span in self.spans],
            "recent_events": [span.to_dict() for span in self.recent_events],
            "truncated": self.truncated,
        }


@dataclass
class Violation:
    """One broken invariant, with evidence.

    Repeated identical findings (same invariant, same message) fold into
    one violation with an occurrence ``count`` — a broken quorum
    assignment would otherwise report every single operation.
    """

    invariant: str
    message: str
    object_name: str | None
    time: float
    span_id: int | None
    forensics: Forensics
    count: int = 1

    def render(self) -> str:
        where = f" object {self.object_name!r}" if self.object_name else ""
        times = f" (x{self.count})" if self.count > 1 else ""
        header = f"[{self.invariant}]{where} at t={self.time:.2f}{times}: {self.message}"
        body = self.forensics.render()
        return header if not body else f"{header}\n{body}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "object": self.object_name,
            "time": self.time,
            "span_id": self.span_id,
            "count": self.count,
            "forensics": self.forensics.to_dict(),
        }


#: Hard cap on forensic subtree size; a transaction-rooted subtree in a
#: long run could otherwise dominate the report.
SUBTREE_LIMIT = 80


# -- the monitor interface ---------------------------------------------------


@dataclass(frozen=True)
class OperationRecord:
    """One successfully executed operation, resolved to runtime values.

    The span's attributes are strings for export friendliness; the
    auditor resolves them back to the live :class:`Transaction`, the
    :class:`ReplicatedObject`, and the actual chosen
    :class:`~repro.histories.events.Event` (the last entry the
    transaction recorded on the object, which the synchronous operation
    protocol guarantees is this operation's event).
    """

    span: Span
    obj: "ReplicatedObject"
    txn: "Transaction"
    event: Any


class InvariantMonitor:
    """Base class for online invariant checks.

    Subclasses override the callbacks they need; :meth:`bind` runs once
    at attach time (capture declared configuration *before* anything can
    mutate it) and :meth:`at_end` once at :meth:`Auditor.finish`.
    """

    #: The invariant's name, used in reports, counters, and exit codes.
    name = "invariant"

    def __init__(self) -> None:
        self.auditor: "Auditor | None" = None

    def bind(self, auditor: "Auditor") -> None:
        self.auditor = auditor

    def report(
        self,
        message: str,
        *,
        span: Span | None = None,
        object_name: str | None = None,
    ) -> None:
        assert self.auditor is not None, "monitor used before bind()"
        self.auditor.report_violation(
            self.name, message, span=span, object_name=object_name
        )

    # -- callbacks (all optional) ------------------------------------------

    def on_operation(self, record: OperationRecord) -> None:
        """A front-end operation completed successfully."""

    def on_transaction_end(self, span: Span, txn: "Transaction") -> None:
        """A transaction span closed (outcome ``committed``/``aborted``)."""

    def on_quorum(self, span: Span) -> None:
        """A quorum-phase span closed."""

    def on_point_event(self, span: Span) -> None:
        """A point event (crash, partition, repository read/write) fired."""

    def on_clear(self) -> None:
        """The tracer was cleared: drop per-epoch state.

        Everything accumulated from the span stream belongs to the
        epoch that was just discarded; carrying it forward would check
        post-clear spans against a forgotten past.  Configuration
        captured at :meth:`bind` time (declared quorums, placement)
        survives — it describes the cluster, not the epoch.
        """

    def at_end(self) -> None:
        """End-of-run checks (serializability, final sweeps)."""

    def state_cells(self) -> int:
        """How many state entries the monitor currently retains.

        The bounded-memory soak tracks the high-water mark of this sum
        across all monitors as evidence that streaming audit state
        really is O(window).
        """
        return 0


# -- the monitors ------------------------------------------------------------


class QuorumIntersectionMonitor(InvariantMonitor):
    """Observed quorums honor the declared assignment and intersect.

    At bind time the monitor captures each object's *declared* quorum
    assignment and, when the scheme exposes one, its dependency relation
    (projected to ``(invocation op, event op, response kind)`` classes —
    intersection is a property of classes, not ground events).  Then:

    * every successful ``quorum`` span's member set must be a quorum of
      the declared coterie for that operation/event class;
    * every observed initial quorum must intersect every observed final
      quorum of a class the dependency relation (or the declared
      assignment itself) requires it to intersect.

    With ``window=W`` the monitor becomes a streaming fold: each
    per-class store keeps only the W most recently seen *distinct*
    quorum member sets (LRU).  The declared-coterie membership check is
    stateless and always exact; the pairwise-intersection check can
    miss a disjoint pair only when the two quorums are separated by
    more than W other distinct member sets of the same class — in
    practice quorum assignments draw from a handful of member sets, so
    even small windows see every pair.
    """

    name = "quorum-intersection"

    def __init__(self, *, window: int | None = None) -> None:
        super().__init__()
        self.window = window
        #: object -> (declared assignment, relation class keys)
        self._declared: dict[str, tuple[Any, frozenset[tuple[str, str, str]]]] = {}
        self._must_intersect: dict[tuple[str, str, str, str], bool] = {}
        #: (object, op) -> distinct observed initial quorums (LRU order)
        self._initials: dict[tuple[str, str], OrderedDict[frozenset[int], None]] = {}
        #: (object, op, kind) -> distinct observed final quorums (LRU order)
        self._finals: dict[
            tuple[str, str, str], OrderedDict[frozenset[int], None]
        ] = {}

    def _remember(
        self,
        store: dict[Any, OrderedDict[frozenset[int], None]],
        key: Any,
        members: frozenset[int],
    ) -> None:
        bucket = store.setdefault(key, OrderedDict())
        if members in bucket:
            bucket.move_to_end(members)
            return
        bucket[members] = None
        if self.window is not None and len(bucket) > self.window:
            bucket.popitem(last=False)

    def on_clear(self) -> None:
        self._initials.clear()
        self._finals.clear()

    def state_cells(self) -> int:
        return sum(len(b) for b in self._initials.values()) + sum(
            len(b) for b in self._finals.values()
        )

    def bind(self, auditor: "Auditor") -> None:
        super().bind(auditor)
        for name, obj in auditor.objects().items():
            self._capture(name, obj)

    def _capture(self, name: str, obj: Any) -> None:
        keys = set()
        relation = getattr(obj.cc, "relation", None)
        if relation is not None:
            for invocation, event in relation:
                keys.add((invocation.op, event.inv.op, event.res.kind))
        self._declared[name] = (obj.assignment, frozenset(keys))

    def on_point_event(self, span: Span) -> None:
        if span.name != "reconfig.switch":
            return
        obj_name = span.attrs.get("object")
        if obj_name is None or self.auditor is None:
            return
        obj = self.auditor.objects().get(obj_name)
        if obj is None:
            return
        # A legitimate reconfiguration announces itself: re-capture the
        # declared assignment from the object's live state and drop the
        # superseded configuration's caches and observed-quorum buckets
        # (old-epoch quorums must not be intersection-checked against
        # new-epoch ones — the hand-over, not intersection, is what
        # carries history across the switch).  The ``quorum-intersection``
        # mutation stays caught precisely because it rewrites the
        # assignment *without* this event.
        self._capture(obj_name, obj)
        self._must_intersect = {
            key: value
            for key, value in self._must_intersect.items()
            if key[0] != obj_name
        }
        for store in (self._initials, self._finals):
            for key in [key for key in store if key[0] == obj_name]:
                del store[key]

    def _required(self, obj_name: str, inv_op: str, ev_op: str, kind: str) -> bool:
        cache_key = (obj_name, inv_op, ev_op, kind)
        cached = self._must_intersect.get(cache_key)
        if cached is not None:
            return cached
        assignment, relation_keys = self._declared[obj_name]
        if (inv_op, ev_op, kind) in relation_keys:
            required = True
        else:
            # No relation available (static/dynamic schemes): the
            # declared assignment is the contract — pairs it makes
            # intersect must stay intersecting at runtime.
            try:
                required = assignment.initial(inv_op).intersects(
                    assignment.final(ev_op, kind)
                )
            except Exception:
                required = False
        self._must_intersect[cache_key] = required
        return required

    def on_quorum(self, span: Span) -> None:
        if span.outcome != "ok" or "quorum" not in span.attrs:
            return
        obj_name = span.attrs.get("object")
        if obj_name not in self._declared:
            return
        op = span.attrs.get("op", "?")
        members = frozenset(span.attrs["quorum"])
        assignment, _keys = self._declared[obj_name]
        if span.attrs.get("phase") == "initial":
            coterie = assignment.initial(op)
            if not coterie.has_quorum(members):
                self.report(
                    f"initial quorum {sorted(members)} for {op} is not a "
                    f"quorum of the declared coterie {coterie!r}",
                    span=span,
                    object_name=obj_name,
                )
            self._remember(self._initials, (obj_name, op), members)
            for (o2, ev_op, kind), finals in self._finals.items():
                if o2 != obj_name or not self._required(obj_name, op, ev_op, kind):
                    continue
                for final_members in finals:
                    if not (members & final_members):
                        self.report(
                            f"initial quorum {sorted(members)} for {op} is "
                            f"disjoint from final quorum "
                            f"{sorted(final_members)} of {ev_op};{kind} — "
                            "the intersection relation no longer contains "
                            "the dependency relation",
                            span=span,
                            object_name=obj_name,
                        )
        else:
            kind = span.attrs.get("res_kind", "Ok")
            coterie = assignment.final(op, kind)
            if not coterie.has_quorum(members):
                self.report(
                    f"final quorum {sorted(members)} for {op};{kind} is not "
                    f"a quorum of the declared coterie {coterie!r}",
                    span=span,
                    object_name=obj_name,
                )
            self._remember(self._finals, (obj_name, op, kind), members)
            for (o2, inv_op), initials in self._initials.items():
                if o2 != obj_name or not self._required(obj_name, inv_op, op, kind):
                    continue
                for initial_members in initials:
                    if not (initial_members & members):
                        self.report(
                            f"final quorum {sorted(members)} for {op};{kind} "
                            f"is disjoint from initial quorum "
                            f"{sorted(initial_members)} of {inv_op} — "
                            "the intersection relation no longer contains "
                            "the dependency relation",
                            span=span,
                            object_name=obj_name,
                        )


class ReconfigEpochMonitor(InvariantMonitor):
    """Every quorum runs under the object's current configuration epoch.

    The one-copy-serializability argument for online reconfiguration
    (``docs/TUNING.md``) has two legs: the drain-and-prime hand-over
    preserves every installed event across the switch, and *no
    front-end keeps operating under the superseded assignment* — a
    stale front-end could assemble quorums that fail to intersect the
    new configuration's, silently splitting the object's history.  The
    hand-over is the reconfig layer's proof; this monitor checks the
    second leg at runtime:

    * ``reconfig.switch`` point events must advance each object's epoch
      by exactly one (no skipped or replayed switches);
    * every successful quorum span carrying an ``epoch`` attribute must
      match the object's current epoch — a mismatch is exactly the
      ``stale-assignment`` mutation (a front-end that missed the
      switch and still uses the old quorums).

    Already a streaming fold: state is one integer per object, so the
    monitor runs unchanged in deep and streaming mode.
    """

    name = "reconfig-epoch"

    def __init__(self) -> None:
        super().__init__()
        self._epochs: dict[str, int] = {}

    def bind(self, auditor: "Auditor") -> None:
        super().bind(auditor)
        for name, obj in auditor.objects().items():
            self._epochs[name] = getattr(obj, "epoch", 0)

    # No on_clear, and state_cells stays 0: the epoch map mirrors
    # durable object configuration (one integer per object, fixed at
    # bind and advanced by switches), not span-stream accumulation —
    # the same footing as QuorumIntersectionMonitor's declared
    # assignments, which the bounded-memory accounting also excludes.

    def on_point_event(self, span: Span) -> None:
        if span.name != "reconfig.switch":
            return
        obj_name = span.attrs.get("object")
        epoch = span.attrs.get("epoch")
        if obj_name is None or epoch is None:
            return
        current = self._epochs.get(obj_name, 0)
        if epoch != current + 1:
            self.report(
                f"reconfiguration of {obj_name!r} announced epoch {epoch} "
                f"but the previous epoch was {current} — switches must "
                "advance the epoch by exactly one",
                span=span,
                object_name=obj_name,
            )
        self._epochs[obj_name] = epoch

    def on_quorum(self, span: Span) -> None:
        if span.outcome != "ok" or "epoch" not in span.attrs:
            return
        obj_name = span.attrs.get("object")
        if obj_name is None or obj_name not in self._epochs:
            return
        epoch = span.attrs["epoch"]
        expected = self._epochs[obj_name]
        if epoch != expected:
            phase = span.attrs.get("phase", "?")
            self.report(
                f"{phase} quorum for {span.attrs.get('op', '?')} on "
                f"{obj_name!r} ran under epoch {epoch} but the current "
                f"configuration epoch is {expected} — a front-end is "
                "using a stale (superseded) quorum assignment",
                span=span,
                object_name=obj_name,
            )


class LockDisciplineMonitor(InvariantMonitor):
    """Executed events stay in synchronization state until commit/abort.

    Every scheme records executed events in
    ``SynchronizationState.active_events`` and releases them only in
    ``finalize_commit``/``finalize_abort`` — the runtime form of
    two-phase locking.  The monitor counts each transaction's executed
    operations per object and, at every operation completion, checks
    the synchronization state still holds at least that many events.

    Already a streaming fold: state is one counter per (object, *active*
    transaction) pair, dropped when the transaction ends — naturally
    windowed by transaction lifetime, nothing for a span window to miss.
    """

    name = "lock-discipline"

    def __init__(self) -> None:
        super().__init__()
        self._executed: dict[tuple[str, Any], int] = {}

    def on_clear(self) -> None:
        self._executed.clear()

    def state_cells(self) -> int:
        return len(self._executed)

    def on_operation(self, record: OperationRecord) -> None:
        key = (record.obj.name, record.txn.id)
        self._executed[key] = self._executed.get(key, 0) + 1
        held = len(record.obj.sync.active_events.get(record.txn.id, ()))
        expected = self._executed[key]
        if held < expected:
            self.report(
                f"transaction {record.txn.id} holds {held} event(s) on "
                f"{record.obj.name!r} after executing {expected} — an event "
                "was released before commit (two-phase locking broken)",
                span=record.span,
                object_name=record.obj.name,
            )

    def on_transaction_end(self, span: Span, txn: "Transaction") -> None:
        assert self.auditor is not None
        for obj_name, txn_id in [k for k in self._executed if k[1] == txn.id]:
            del self._executed[(obj_name, txn_id)]
            obj = self.auditor.object(obj_name)
            if obj is not None and txn.id in obj.sync.active_events:
                self.report(
                    f"transaction {txn.id} still holds events on "
                    f"{obj_name!r} after its span closed ({span.outcome})",
                    span=span,
                    object_name=obj_name,
                )


class TimestampOrderMonitor(InvariantMonitor):
    """Commit timestamps respect begin order and commit order.

    Hybrid atomicity serializes committed actions by their commit
    timestamps (Definition 3), which the transaction manager draws from
    a monotone Lamport clock — so each transaction's commit timestamp
    must strictly follow its begin timestamp, and commits observed in
    real order must carry strictly increasing timestamps.

    Already a streaming fold: O(1) state (the last commit seen) — a
    monotonicity check is incremental by nature, nothing for a span
    window to miss.
    """

    name = "timestamp-order"

    def __init__(self) -> None:
        super().__init__()
        self._last_commit: tuple[Any, Any] | None = None  # (ts, txn id)

    def on_clear(self) -> None:
        self._last_commit = None

    def state_cells(self) -> int:
        return 0 if self._last_commit is None else 1

    def on_transaction_end(self, span: Span, txn: "Transaction") -> None:
        if span.outcome != "committed":
            return
        if txn.commit_ts is None:
            self.report(
                f"transaction {txn.id} committed without a commit timestamp",
                span=span,
            )
            return
        if not txn.begin_ts < txn.commit_ts:
            self.report(
                f"commit timestamp {txn.commit_ts} of {txn.id} does not "
                f"follow its begin timestamp {txn.begin_ts} — the hybrid "
                "serialization position precedes the transaction's start",
                span=span,
            )
        if self._last_commit is not None:
            last_ts, last_id = self._last_commit
            if not last_ts < txn.commit_ts:
                self.report(
                    f"commit timestamp {txn.commit_ts} of {txn.id} is not "
                    f"after {last_ts} of previously committed {last_id} — "
                    "commit-timestamp order diverges from commit order",
                    span=span,
                )
        if self._last_commit is None or self._last_commit[0] < txn.commit_ts:
            self._last_commit = (txn.commit_ts, txn.id)


class LogConsistencyMonitor(InvariantMonitor):
    """Replica logs never conflict: one entry per Lamport timestamp.

    Replicated logs are merged as timestamp-ordered set unions, so two
    correct replicas can lag each other but can never disagree — per
    object, each ``(counter, site)`` timestamp names at most one
    ``(action, event)`` entry across every repository.  The monitor
    folds every repository write into a per-object timestamp map
    (incrementally, on ``repo.write`` events) and sweeps all
    repositories once more at end of run.

    With ``window=W`` the canonical map becomes a sliding window over
    the W most recently first-seen timestamps per object, and the
    per-replica verified sets track the *current* log instead of the
    union of everything ever seen (so compacted entries are released).
    A divergence is then caught unless the conflicting entry arrives
    after more than W newer timestamps were first seen — replicas that
    lag by less than the window are always checked exactly.
    """

    name = "log-consistency"

    def __init__(self, *, window: int | None = None) -> None:
        super().__init__()
        self.window = window
        self._canonical: dict[str, OrderedDict[Any, tuple[Any, Any]]] = {}
        #: (site, object) -> the entry set already checked against
        #: canonical.  Logs grow by set-merge, so a previously verified
        #: entry can never *become* conflicting; diffing frozensets
        #: (which reuses their stored hashes) keeps each write scan
        #: O(new entries) instead of re-sorting and re-hashing the whole
        #: log — a conflicting entry is by construction one we have not
        #: seen.  Deep mode unions the sets (a monotone high-water
        #: mark); windowed mode stores the latest log snapshot so
        #: compaction can actually release memory.
        self._verified: dict[tuple[int, str], frozenset[Any]] = {}
        #: (site, object) -> the exact Log object scanned last.  Deep
        #: mode only: ``Log.fresh_since`` recovers the unchecked delta
        #: from the extension-lineage chain in O(new entries), skipping
        #: the frozenset diff entirely.  Windowed mode never anchors a
        #: Log — pinning the lineage chain would defeat compaction's
        #: memory release.
        self._last_log: dict[tuple[int, str], Any] = {}

    def on_clear(self) -> None:
        self._canonical.clear()
        self._verified.clear()
        self._last_log.clear()

    def state_cells(self) -> int:
        return sum(len(m) for m in self._canonical.values()) + len(
            self._verified
        )

    def on_point_event(self, span: Span) -> None:
        if span.name != "repo.write" or span.site is None:
            return
        assert self.auditor is not None
        repositories = self.auditor.repositories
        if not 0 <= span.site < len(repositories):
            return
        obj_name = span.attrs.get("object")
        if obj_name is None:
            return
        repo = repositories[span.site]
        self._scan(obj_name, repo.peek_log(obj_name), span.site, span)

    def at_end(self) -> None:
        assert self.auditor is not None
        for site, repo in enumerate(self.auditor.repositories):
            for obj_name in repo.stored_objects():
                self._scan(obj_name, repo.peek_log(obj_name), site, None)

    def _scan(self, obj_name: str, log, site: int, span: Span | None) -> None:
        key = (site, obj_name)
        delta = None
        if self.window is None:
            last = self._last_log.get(key)
            if last is not None:
                delta = log.fresh_since(last)
            self._last_log[key] = log
        if delta is not None:
            # Lineage hit: ``delta`` is exactly the entries not in the
            # last scanned log, every one of which was checked then.
            fresh: Any = delta
            self._verified[key] = log.entry_set
        else:
            entries = log.entry_set
            verified = self._verified.get(key)
            fresh = entries if verified is None else entries - verified
            if self.window is not None or verified is None:
                self._verified[key] = entries
            else:
                self._verified[key] = verified | entries
        if not fresh:
            return
        canonical = self._canonical.setdefault(obj_name, OrderedDict())
        for entry in sorted(fresh, key=lambda e: e.ts):
            identity = (entry.action, entry.event)
            seen = canonical.setdefault(entry.ts, identity)
            if seen != identity:
                self.report(
                    f"replica logs diverge at timestamp {entry.ts}: site "
                    f"{site} holds {entry.event} for {entry.action}, another "
                    f"replica holds {seen[1]} for {seen[0]}",
                    span=span,
                    object_name=obj_name,
                )
        if self.window is not None:
            while len(canonical) > self.window:
                canonical.popitem(last=False)


class HistoryConsistencyMonitor(InvariantMonitor):
    """The live-captured history matches the runtime recorder's.

    The auditor rebuilds each object's behavioral history purely from
    the span stream; the runtime keeps its own
    :class:`~repro.replication.object.HistoryRecorder`.  At end of run
    the two must produce identical
    :class:`~repro.histories.behavioral.BehavioralHistory` values — the
    observability path is only trustworthy if it cannot drift from the
    system of record.

    Deep mode only (the comparison needs the full captured history).  A
    mid-run :meth:`Tracer.clear` discards the captured prefix, so the
    monitor goes inert for the rest of the run rather than comparing a
    suffix against the runtime's full record.
    """

    name = "history-capture"

    def __init__(self) -> None:
        super().__init__()
        self._cleared = False

    def on_clear(self) -> None:
        self._cleared = True

    def at_end(self) -> None:
        assert self.auditor is not None
        if self._cleared:
            return
        for name, obj in self.auditor.objects().items():
            captured = self.auditor.history(name)
            recorded = obj.recorder.to_behavioral_history()
            if captured != recorded:
                self.report(
                    f"live-captured history of {name!r} diverges from the "
                    f"runtime recorder ({len(captured)} vs {len(recorded)} "
                    "entries) — span-stream capture lost or reordered entries",
                    object_name=name,
                )


class SerializabilityMonitor(InvariantMonitor):
    """End-of-run one-copy serializability through the theory kernel.

    Serializes each object's committed actions in the order its scheme
    claims to enforce — begin-timestamp order for static atomicity,
    commit-timestamp order for hybrid and dynamic — and replays the
    result against the object's serial specification via its
    :class:`~repro.spec.legality.LegalityOracle`.  An illegal
    serialization means the run was not one-copy serializable in the
    scheme's order: the replicated object diverged from a single
    reliable copy.

    Deep mode only: a *suffix* of a run serialized from the initial
    state is not a legal serial history even when the run is correct,
    so after a mid-run :meth:`Tracer.clear` the monitor goes inert
    rather than false-flag the surviving epoch.
    """

    name = "one-copy-serializability"

    def __init__(self) -> None:
        super().__init__()
        self._cleared = False

    def on_clear(self) -> None:
        self._cleared = True

    def at_end(self) -> None:
        assert self.auditor is not None
        if self._cleared:
            return
        for name, obj in self.auditor.objects().items():
            history = self.auditor.history(name)
            order_kind = getattr(obj.cc, "serialization_order", "commit")
            if order_kind == "begin":
                order = [a for a in history.begin_order if a in history.committed]
            else:
                order = list(history.commit_order)
            serial = serialize(history, order)
            if obj.oracle.is_legal(serial):
                continue
            illegal_at = next(
                k
                for k in range(1, len(serial) + 1)
                if not obj.oracle.is_legal(serial[:k])
            )
            self.report(
                f"committed {order_kind}-order serialization of {name!r} is "
                f"illegal at event {illegal_at}/{len(serial)} "
                f"({serial[illegal_at - 1]}) — the run is not one-copy "
                "serializable",
                object_name=name,
            )


class PartialReplicationMonitor(InvariantMonitor):
    """No site logs, locks, or acks an operation for a shard it lacks.

    Sutra & Shapiro's *genuine partial replication*: a site only ever
    processes operations for the objects it replicates.  At bind time
    the monitor pins the cluster's compiled
    :class:`~repro.replication.keyspace.Placement` — object → holder
    sites — and then checks, online:

    * every ``repo.read`` / ``repo.write`` point event fires at a
      holder of the object (a read or write landing elsewhere means the
      router leaked an operation off its replica set);
    * every successful quorum — initial or final — is made up entirely
      of holder sites (a non-holder's ack must never help a quorum
      form).

    On a cluster without a placement (hand-wired, pre-keyspace) the
    monitor is inert: every site implicitly holds everything.  Objects
    placed *after* bind are not checked — like the other monitors, the
    declared configuration is captured at attach time.
    """

    name = "genuine-partial-replication"

    def __init__(self) -> None:
        super().__init__()
        self._holders: dict[str, frozenset[int]] | None = None

    def bind(self, auditor: "Auditor") -> None:
        super().bind(auditor)
        placement = auditor.placement()
        if placement is None:
            self._holders = None
            return
        self._holders = {
            name: frozenset(placement.replicas(name))
            for name in placement.object_names()
        }

    def on_point_event(self, span: Span) -> None:
        if self._holders is None or span.site is None:
            return
        if span.name not in ("repo.read", "repo.write"):
            return
        obj_name = span.attrs.get("object")
        holders = self._holders.get(obj_name) if obj_name is not None else None
        if holders is None or span.site in holders:
            return
        verb = "served a read of" if span.name == "repo.read" else "accepted a write of"
        self.report(
            f"site {span.site} {verb} {obj_name!r} but its replica set is "
            f"{sorted(holders)} — the operation was routed to a non-holding "
            "site (genuine partial replication broken)",
            span=span,
            object_name=obj_name,
        )

    def on_quorum(self, span: Span) -> None:
        if self._holders is None:
            return
        if span.outcome != "ok" or "quorum" not in span.attrs:
            return
        obj_name = span.attrs.get("object")
        holders = self._holders.get(obj_name) if obj_name is not None else None
        if holders is None:
            return
        members = frozenset(span.attrs["quorum"])
        strays = members - holders
        if strays:
            phase = span.attrs.get("phase", "?")
            self.report(
                f"{phase} quorum {sorted(members)} for "
                f"{span.attrs.get('op', '?')} on {obj_name!r} includes "
                f"non-holding site(s) {sorted(strays)} — replica set is "
                f"{sorted(holders)}",
                span=span,
                object_name=obj_name,
            )


def default_monitors() -> list[InvariantMonitor]:
    """The full stock monitor set, in check order."""
    return [
        QuorumIntersectionMonitor(),
        ReconfigEpochMonitor(),
        LockDisciplineMonitor(),
        TimestampOrderMonitor(),
        LogConsistencyMonitor(),
        HistoryConsistencyMonitor(),
        SerializabilityMonitor(),
        PartialReplicationMonitor(),
    ]


#: Default sliding-window size for streaming monitors.
DEFAULT_STREAM_WINDOW = 256

#: The invariants the streaming monitor set checks — the six online
#: checks; history-capture and one-copy-serializability need the full
#: history and stay deep-mode-only.
STREAMING_INVARIANTS = (
    "quorum-intersection",
    "reconfig-epoch",
    "lock-discipline",
    "timestamp-order",
    "log-consistency",
    "genuine-partial-replication",
)


def streaming_monitors(
    window: int = DEFAULT_STREAM_WINDOW,
) -> list[InvariantMonitor]:
    """The O(window) online monitor set, in check order.

    Same invariant names and same verdicts as the corresponding deep
    monitors on any span stream whose relevant state fits the window
    (see each monitor's docstring for the exact guarantee).
    """
    return [
        QuorumIntersectionMonitor(window=window),
        ReconfigEpochMonitor(),
        LockDisciplineMonitor(),
        TimestampOrderMonitor(),
        LogConsistencyMonitor(window=window),
        PartialReplicationMonitor(),
    ]


# -- the report --------------------------------------------------------------


@dataclass(frozen=True)
class AuditReport:
    """The auditor's verdict for one run."""

    violations: tuple[Violation, ...]
    suppressed: dict[str, int]
    monitors: tuple[str, ...]
    operations: int
    transactions: int
    spans_seen: int
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Audit mode that produced this report ("deep" or "streaming").
    mode: str = "deep"
    #: Sliding-window size (``None`` in deep mode).
    window: int | None = None
    #: Tracer retention at finish() time and its high-water mark —
    #: the retained-memory evidence bounded-memory claims rest on.
    retained_spans: int = 0
    peak_retained: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.suppressed

    @property
    def violated_invariants(self) -> tuple[str, ...]:
        names: list[str] = []
        for violation in self.violations:
            if violation.invariant not in names:
                names.append(violation.invariant)
        for name in sorted(self.suppressed):
            if name not in names:
                names.append(name)
        return tuple(names)

    def render(self) -> str:
        if self.ok:
            checked = ", ".join(self.monitors)
            return (
                f"audit: OK — {len(self.monitors)} invariants held "
                f"({checked}) over {self.operations} operations / "
                f"{self.transactions} transactions"
            )
        total = sum(v.count for v in self.violations) + sum(
            self.suppressed.values()
        )
        lines = [
            f"audit: FAIL — {total} violation(s) of "
            f"{', '.join(self.violated_invariants)} over "
            f"{self.operations} operations / {self.transactions} transactions",
            "",
        ]
        for violation in self.violations:
            lines.append(violation.render())
            lines.append("")
        for name, count in sorted(self.suppressed.items()):
            lines.append(
                f"[{name}] ... {count} further distinct violation(s) suppressed"
            )
        return "\n".join(lines).rstrip()

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "mode": self.mode,
            "window": self.window,
            "monitors": list(self.monitors),
            "operations": self.operations,
            "transactions": self.transactions,
            "spans_seen": self.spans_seen,
            "retained_spans": self.retained_spans,
            "peak_retained": self.peak_retained,
            "violated_invariants": list(self.violated_invariants),
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": dict(self.suppressed),
            "metrics": self.registry.to_dict(),
        }

    def verdict(self, invariants: Sequence[str] | None = None) -> dict[str, Any]:
        """A machine-comparable verdict, optionally restricted to ``invariants``.

        Unlike :meth:`to_dict`, the verdict excludes everything that
        legitimately differs between audit modes over one span stream —
        forensics (depends on tracer retention), memory marks, the
        monitor roster — keeping exactly what both modes must agree on:
        the violations themselves plus the operation/transaction/span
        tallies.  ``json.dumps(report.verdict(STREAMING_INVARIANTS),
        sort_keys=True)`` is the byte-identity contract between deep and
        streaming audits.
        """
        names = None if invariants is None else frozenset(invariants)
        kept = [
            v
            for v in self.violations
            if names is None or v.invariant in names
        ]
        suppressed = {
            name: count
            for name, count in self.suppressed.items()
            if names is None or name in names
        }
        return {
            "ok": not kept and not suppressed,
            "operations": self.operations,
            "transactions": self.transactions,
            "spans_seen": self.spans_seen,
            "violations": [
                {
                    "invariant": v.invariant,
                    "message": v.message,
                    "object": v.object_name,
                    "time": v.time,
                    "count": v.count,
                }
                for v in kept
            ],
            "suppressed": suppressed,
        }


# -- the auditor -------------------------------------------------------------


class Auditor(TraceListener):
    """Attaches to a cluster's tracer and audits the run as it happens.

    ``cluster`` is anything with ``tracer``, ``tm``, and
    ``repositories`` attributes (normally a
    :class:`~repro.replication.cluster.Cluster`).  The tracer must be a
    real (enabled) tracer — the auditor *is* a trace listener, so there
    is nothing to audit on a :class:`~repro.obs.trace.NullTracer` run.

    Attach the auditor **before** the workload runs (and before any
    fault injection you want it to treat as suspect — monitors capture
    the declared configuration at attach time).  Call :meth:`finish`
    after the run for the end-of-run checks and the
    :class:`AuditReport`.

    ``mode="streaming"`` swaps the default monitor roster for
    :func:`streaming_monitors` (sliding windows of ``window``) and stops
    capturing per-object histories — auditor state becomes O(window +
    active transactions) regardless of run length.  Pair it with a
    ring-retention tracer for a fully bounded pipeline.
    """

    def __init__(
        self,
        cluster,
        monitors: Sequence[InvariantMonitor] | None = None,
        *,
        mode: str = "deep",
        window: int = DEFAULT_STREAM_WINDOW,
        recent_events: int = 32,
        max_per_invariant: int = 10,
    ):
        tracer: Tracer = cluster.tracer
        if not tracer.enabled:
            raise ValueError(
                "the auditor needs an enabled Tracer; build the cluster with "
                "tracer=Tracer() (NullTracer records nothing to audit)"
            )
        if mode not in ("deep", "streaming"):
            raise ValueError(f"unknown audit mode {mode!r}")
        self._cluster = cluster
        self._tracer = tracer
        self._tm = cluster.tm
        self.repositories = tuple(cluster.repositories)
        self.mode = mode
        self.window = window if mode == "streaming" else None
        if monitors is not None:
            self._monitors = tuple(monitors)
        elif mode == "streaming":
            self._monitors = tuple(streaming_monitors(window))
        else:
            self._monitors = tuple(default_monitors())
        #: Streaming audits keep no per-object history recorders — that
        #: is precisely the state that grows with the run.
        self._capture_history = mode == "deep"
        self._recent: deque[Span] = deque(maxlen=recent_events)
        self._max_per_invariant = max_per_invariant
        self._violations: dict[tuple[str, str], Violation] = {}
        self._suppressed: dict[str, int] = {}
        self._txn_by_label: dict[str, Any] = {}
        self._recorders: dict[str, Any] = {}
        self.registry = MetricsRegistry()
        # Cached instruments: these fire per operation/transaction on
        # the hot listener path, so skip the registry lookup each time.
        self._ops_counter = self.registry.counter("audit.operations")
        self._txn_counter = self.registry.counter("audit.transactions")
        self.operations = 0
        self.transactions = 0
        self.spans_seen = 0
        self._finished = False
        self._report: AuditReport | None = None
        for monitor in self._monitors:
            monitor.bind(self)
        # Per-hook dispatch lists: the listener fires for every span in
        # the run, and most monitors implement only one or two hooks —
        # calling the base-class no-ops for the rest was a measurable
        # slice of the audited-vs-traced overhead.  Override detection
        # resolves through the MRO, so subclassed monitors still land
        # on every hook they (or a parent) actually implement.
        def _overriding(hook: str) -> tuple:
            return tuple(
                monitor
                for monitor in self._monitors
                if getattr(type(monitor), hook)
                is not getattr(InvariantMonitor, hook)
            )

        self._operation_monitors = _overriding("on_operation")
        self._transaction_monitors = _overriding("on_transaction_end")
        self._quorum_monitors = _overriding("on_quorum")
        self._point_event_monitors = _overriding("on_point_event")
        tracer.add_listener(self)

    # -- accessors for monitors --------------------------------------------

    def objects(self) -> dict[str, "ReplicatedObject"]:
        return self._tm.objects

    def object(self, name: str) -> "ReplicatedObject | None":
        return self._tm.objects.get(name)

    def placement(self):
        """The cluster's compiled placement, or ``None`` when hand-wired."""
        return getattr(self._cluster, "placement", None)

    def history(self, object_name: str):
        """The live-captured behavioral history of one object."""
        from repro.replication.object import HistoryRecorder

        recorder = self._recorders.get(object_name)
        if recorder is None:
            recorder = HistoryRecorder()
        return recorder.to_behavioral_history()

    # -- violation intake ---------------------------------------------------

    def report_violation(
        self,
        invariant: str,
        message: str,
        *,
        span: Span | None = None,
        object_name: str | None = None,
    ) -> None:
        self.registry.counter("audit.violations").inc()
        self.registry.counter(f"audit.violations.{invariant}").inc()
        key = (invariant, message)
        existing = self._violations.get(key)
        if existing is not None:
            existing.count += 1
            return
        distinct = sum(1 for k in self._violations if k[0] == invariant)
        if distinct >= self._max_per_invariant:
            self._suppressed[invariant] = self._suppressed.get(invariant, 0) + 1
            return
        self._violations[key] = Violation(
            invariant=invariant,
            message=message,
            object_name=object_name,
            time=self._tracer.now,
            span_id=span.span_id if span is not None else None,
            forensics=self._capture_forensics(span),
        )
        self._tracer.event(
            "audit.violation",
            invariant=invariant,
            object=object_name,
            message=message,
        )

    def _capture_forensics(self, span: Span | None) -> Forensics:
        recent = tuple(self._recent)
        if span is None:
            return Forensics(recent_events=recent)
        children: dict[int, list[Span]] = {}
        for candidate in self._tracer.spans:
            if candidate.parent_id is not None:
                children.setdefault(candidate.parent_id, []).append(candidate)
        subtree: list[Span] = []
        truncated = False
        stack = [span]
        while stack:
            node = stack.pop()
            if len(subtree) >= SUBTREE_LIMIT:
                truncated = True
                break
            subtree.append(node)
            stack.extend(reversed(children.get(node.span_id, ())))
        return Forensics(
            spans=tuple(subtree), recent_events=recent, truncated=truncated
        )

    # -- TraceListener ------------------------------------------------------

    def on_span_end(self, span: Span) -> None:
        if self._finished:
            return
        self.spans_seen += 1
        kind = span.kind
        if kind == "operation":
            self._operation_closed(span)
        elif kind == "transaction":
            self._transaction_closed(span)
        elif kind == "quorum":
            for monitor in self._quorum_monitors:
                monitor.on_quorum(span)
        elif kind == "event":
            if span.name == "audit.violation":
                return
            self._recent.append(span)
            for monitor in self._point_event_monitors:
                monitor.on_point_event(span)

    def on_clear(self) -> None:
        """The tracer was cleared: reset per-epoch auditor state.

        Violations already found stand (they happened); captured
        histories, the recent-event ring, cached transaction labels,
        and every monitor's stream state belong to the dropped epoch
        and are reset so the next epoch is not checked against it.
        """
        if self._finished:
            return
        self._recent.clear()
        self._txn_by_label.clear()
        self._recorders.clear()
        for monitor in self._monitors:
            monitor.on_clear()

    # -- dispatch -----------------------------------------------------------

    def _resolve_txn(self, label: str | None):
        if label is None:
            return None
        txn = self._txn_by_label.get(label)
        if txn is not None:
            return txn
        # Span labels are str(ActionId); parse and look up in O(1)
        # rather than rescanning the manager's transaction table (that
        # scan is quadratic over a long run).
        action = ActionId.parse(label)
        if action is not None:
            txn = self._tm.lookup(action)
        if txn is None:
            # Foreign label shape — fall back to the full scan once.
            for candidate in self._tm.transactions():
                self._txn_by_label.setdefault(str(candidate.id), candidate)
            return self._txn_by_label.get(label)
        self._txn_by_label[label] = txn
        return txn

    def _operation_closed(self, span: Span) -> None:
        if span.outcome != "ok":
            return
        obj = self.object(span.attrs.get("object"))
        txn = self._resolve_txn(span.attrs.get("txn"))
        if obj is None or txn is None:
            return
        entries = obj.sync.own_entries(txn.id)
        if not entries:
            # The operation protocol records the entry before the span
            # closes; an empty record means capture is broken.
            self.report_violation(
                "history-capture",
                f"operation span for {txn.id} on {obj.name!r} closed ok but "
                "no synchronization entry was recorded",
                span=span,
                object_name=obj.name,
            )
            return
        event = entries[-1].event
        self.operations += 1
        self._ops_counter.inc()
        if self._capture_history:
            from repro.replication.object import HistoryRecorder

            recorder = self._recorders.setdefault(obj.name, HistoryRecorder())
            recorder.record_op(txn, event)
        record = OperationRecord(span=span, obj=obj, txn=txn, event=event)
        for monitor in self._operation_monitors:
            monitor.on_operation(record)

    def _transaction_closed(self, span: Span) -> None:
        label = span.attrs.get("txn")
        txn = self._resolve_txn(label)
        if txn is None:
            return
        self.transactions += 1
        self._txn_counter.inc()
        committed = span.outcome == "committed"
        if self._capture_history:
            for name in span.attrs.get("objects", ()):
                recorder = self._recorders.get(name)
                if recorder is None:
                    continue
                if committed:
                    recorder.record_commit(txn)
                else:
                    recorder.record_abort(txn)
        for monitor in self._transaction_monitors:
            monitor.on_transaction_end(span, txn)
        if not self._capture_history and label is not None:
            # A finished transaction's label can never be resolved again.
            self._txn_by_label.pop(label, None)

    # -- lifecycle ----------------------------------------------------------

    def retained_state(self) -> dict[str, int]:
        """Live auditor state sizes (the streaming-boundedness evidence)."""
        return {
            "txn_labels": len(self._txn_by_label),
            "recorders": len(self._recorders),
            "recent_events": len(self._recent),
            "monitor_cells": sum(m.state_cells() for m in self._monitors),
        }

    def finish(self) -> AuditReport:
        """Run end-of-run checks, detach, and return the report."""
        if self._report is not None:
            return self._report
        for monitor in self._monitors:
            monitor.at_end()
        self._finished = True
        try:
            self._tracer.remove_listener(self)
        except ValueError:  # pragma: no cover - already detached
            pass
        retained = getattr(self._tracer, "retained_spans", 0)
        peak = getattr(self._tracer, "peak_retained", 0)
        self.registry.gauge("obs.retained_spans").set(float(retained))
        self.registry.gauge("obs.peak_retained").set(float(peak))
        self._report = AuditReport(
            violations=tuple(self._violations.values()),
            suppressed=dict(self._suppressed),
            monitors=tuple(m.name for m in self._monitors),
            operations=self.operations,
            transactions=self.transactions,
            spans_seen=self.spans_seen,
            registry=self.registry,
            mode=self.mode,
            window=self.window,
            retained_spans=retained,
            peak_retained=peak,
        )
        return self._report
