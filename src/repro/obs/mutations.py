"""Seeded protocol mutations for auditor fault injection.

Each mutation deliberately breaks one protocol invariant in a running
cluster so the fault-injection sweep (``python -m repro audit --sweep``)
can demonstrate the online auditor catches it.  Mutations are applied
*after* the :class:`~repro.obs.audit.Auditor` attaches — the auditor's
monitors capture the declared configuration at attach time, exactly the
way a production checker pins the reviewed config, so a mutation cannot
hide by rewriting the thing it is checked against.

Mutations are sabotage, not simulation features: they monkey-patch live
cluster components (quorum assignments, scheme hooks, the transaction
manager's clock, a repository's write path) and are intentionally not
reversible within a run.  Build a fresh cluster per mutated run.

Registry::

    MUTATIONS = {
        "quorum-intersection": ...  # single-site quorums, nothing intersects
        "early-lock-release":  ...  # drop sync state right after execution
        "timestamp-inversion": ...  # commit timestamp before begin timestamp
        "log-divergence":      ...  # forge a conflicting replica log entry
        "shard-misroute":      ...  # route ops through a non-holding site
        "stale-assignment":    ...  # front-end keeps pre-reconfig quorums
    }

Each entry is ``apply(cluster) -> str`` returning a one-line description
of the sabotage for reports.
"""

from __future__ import annotations

from typing import Callable

from repro.clocks.timestamps import Timestamp
from repro.histories.events import Event, Response
from repro.quorum.assignment import OperationQuorums, QuorumAssignment
from repro.quorum.coterie import ThresholdCoterie
from repro.replication.log import LogEntry


def break_quorum_intersection(cluster) -> str:
    """Shrink every quorum to a single site.

    With one-site initial and final quorums over three or more sites,
    the intersection relation is empty: a front-end can read a view that
    misses committed entries entirely.  The auditor's declared-coterie
    membership check flags the very first undersized quorum.
    """
    for obj in cluster.tm.objects.values():
        n = obj.assignment.n_sites
        quorums = OperationQuorums(
            initial=ThresholdCoterie(n, 1), final=ThresholdCoterie(n, 1)
        )
        obj.assignment = QuorumAssignment(
            n, {op: quorums for op in obj.assignment.operation_names}
        )
    return "replaced all quorum coteries with single-site thresholds"


def release_locks_early(cluster) -> str:
    """Drop synchronization state the moment an event executes.

    Correct schemes hold executed events in ``active_events`` until
    commit or abort (two-phase locking / dependency locks); this
    mutation wraps each scheme's ``on_executed`` hook to discard the
    transaction's held events immediately, so concurrent transactions
    stop conflicting with it.
    """
    for obj in cluster.tm.objects.values():
        original = obj.cc.on_executed

        def mutated(txn, event, sync, _original=original):
            _original(txn, event, sync)
            sync.active_events.pop(txn.id, None)

        obj.cc.on_executed = mutated
    return "synchronization state released immediately after each event"


class _CorruptNextTick:
    """A clock wrapper that corrupts its next timestamp draw.

    Installed around one ``TransactionManager.commit`` call: the single
    tick inside (the commit-timestamp draw) comes back *before* the
    committing transaction's begin timestamp, at a site (-9) no real
    clock uses, so the corrupt timestamp is unique and cannot collide
    with legitimate log or commit timestamps.
    """

    def __init__(self, real, txn, state):
        self._real = real
        self._txn = txn
        self._state = state

    def tick(self) -> Timestamp:
        ts = self._real.tick()
        if not self._state["done"]:
            self._state["done"] = True
            return Timestamp(self._txn.begin_ts.counter, site=-9)
        return ts

    def witness(self, other: Timestamp) -> Timestamp:
        return self._real.witness(other)

    def __getattr__(self, name):
        return getattr(self._real, name)


def invert_timestamps(cluster) -> str:
    """Hand one transaction a commit timestamp before its begin timestamp.

    The second transaction to reach commit phase two draws a corrupted
    commit timestamp ``(begin.counter, site=-9)``, which orders *before*
    its begin timestamp ``(begin.counter, site>=-1)`` — breaking the
    monotone commit order hybrid atomicity serializes by.
    """
    tm = cluster.tm
    original = tm.commit
    state = {"done": False}

    def mutated(txn, _original=original, _tm=tm, _state=state):
        if _tm.commits >= 1 and not _state["done"]:
            real = _tm.clock
            _tm.clock = _CorruptNextTick(real, txn, _state)
            try:
                return _original(txn)
            finally:
                _tm.clock = real
        return _original(txn)

    tm.commit = mutated
    return "second committing transaction draws a pre-begin commit timestamp"


def diverge_logs(cluster) -> str:
    """Forge a conflicting entry in repository 0's stable storage.

    After repository 0's first successful log write, a second entry is
    forged at the *same* Lamport timestamp as the newest stored entry
    but with a different response — two replicas (or one replica's own
    log) now disagree about what happened at that timestamp, which the
    log-consistency monitor detects on the next write or final sweep.
    """
    repo = cluster.repositories[0]
    original = repo.write_log
    state = {"done": False}

    def mutated(object_name, update, _original=original, _repo=repo, _state=state):
        _original(object_name, update)
        if _state["done"]:
            return
        log = _repo._logs.get(object_name)
        if log is None or not len(log):
            return
        victim = log.ordered()[-1]
        forged = LogEntry(
            victim.ts,
            Event(victim.event.inv, Response("Forged", ())),
            victim.action,
        )
        _repo._logs[object_name] = log.add(forged)
        _state["done"] = True

    repo.write_log = mutated
    return "forged a conflicting log entry at an existing timestamp on site 0"


def misroute_shard(cluster) -> str:
    """Route every partially replicated object through a non-holding site.

    The router's visit order for each object whose replica set is a
    strict subset of the cluster gains the lowest non-holding site at
    the *front*, so the very next operation on any such object probes —
    and, because storage is permissive, logs at — a site that was never
    assigned the shard.  The genuine-partial-replication monitor flags
    the stray read/write event and the polluted quorum.

    Requires a sharded keyspace: raises
    :class:`~repro.errors.SpecificationError` on a fully replicated
    cluster, where every site holds everything and no misroute exists.
    """
    from repro.errors import SpecificationError

    router = getattr(cluster, "router", None)
    placement = getattr(cluster, "placement", None)
    if router is None or placement is None:
        raise SpecificationError(
            "shard-misroute needs a keyspace-built cluster with a router"
        )
    all_sites = set(range(placement.n_sites))
    outsiders = {}
    for name in placement.object_names():
        missing = all_sites - set(placement.replicas(name))
        if missing:
            outsiders[name] = min(missing)
    if not outsiders:
        raise SpecificationError(
            "shard-misroute needs a partially replicated object; every "
            "object in this keyspace is placed at all sites"
        )
    original = router.route

    def mutated(frontend_site, name, _original=original, _outsiders=outsiders):
        route = _original(frontend_site, name)
        stray = _outsiders.get(name)
        if stray is None:
            return route
        return (stray,) + tuple(s for s in route if s != stray)

    router.route = mutated
    return (
        f"router visits a non-holding site first for {len(outsiders)} "
        "partially replicated object(s)"
    )


def stale_assignment(cluster) -> str:
    """One front-end keeps using a superseded quorum assignment.

    The cluster's first object is legitimately reconfigured online (to
    the always-valid read-everything/write-anywhere layout over its
    replica set, via the full drain-and-prime hand-over, epoch bump and
    ``reconfig.switch`` announcement) — but front-end 0's assignment
    resolution for that object is frozen at the pre-switch
    ``(assignment, epoch)`` first, modeling a front-end that missed the
    view change.  Every subsequent operation front-end 0 runs on the
    object assembles quorums of the *old* configuration and stamps the
    old epoch on its quorum spans, which the ``reconfig-epoch`` monitor
    flags against the epoch the switch announced.
    """
    from repro.quorum.coterie import EmptyCoterie, SubsetThresholdCoterie
    from repro.replication.reconfig import reconfigure

    victim_fe = cluster.frontends[0]
    name = sorted(cluster.tm.objects)[0]
    obj = cluster.tm.object(name)
    placement = getattr(cluster, "placement", None)
    if placement is not None and name in placement.object_names():
        replicas = frozenset(placement.replicas(name))
    else:
        replicas = frozenset(range(obj.assignment.n_sites))

    # Freeze front-end 0's view of the object *before* the switch.
    stale = victim_fe._assignment_of(obj)
    original = victim_fe._assignment_of

    def mutated(target, _original=original, _name=name, _stale=stale):
        if target.name == _name:
            return _stale
        return _original(target)

    victim_fe._assignment_of = mutated

    # Legitimate reconfiguration: read-everything initial quorums with
    # single-site finals over the replica set — totally intersecting,
    # hence valid under any dependency relation, and different from any
    # seed layout on two or more replicas.
    n = obj.assignment.n_sites
    new_assignment = QuorumAssignment(
        n,
        {
            op: OperationQuorums(
                initial=SubsetThresholdCoterie(n, replicas, len(replicas)),
                final=(
                    SubsetThresholdCoterie(n, replicas, 1)
                    if len(replicas) > 0
                    else EmptyCoterie(n)
                ),
            )
            for op in obj.assignment.operation_names
        },
    )
    reconfigure(
        cluster.network,
        cluster.repositories,
        obj,
        new_assignment,
        placement=placement,
        frontends=cluster.frontends,
        tracer=cluster.tracer,
    )
    return (
        f"front-end 0 pinned to the pre-switch assignment of {name!r} "
        f"(epoch {stale[1]}) after an online reconfiguration to epoch "
        f"{obj.epoch}"
    )


#: Mutation registry: name -> apply(cluster) -> description.
MUTATIONS: dict[str, Callable[..., str]] = {
    "quorum-intersection": break_quorum_intersection,
    "early-lock-release": release_locks_early,
    "timestamp-inversion": invert_timestamps,
    "log-divergence": diverge_logs,
    "shard-misroute": misroute_shard,
    "stale-assignment": stale_assignment,
}

#: Which invariant each mutation is expected to trip (used by the sweep
#: to verify the auditor caught the *seeded* fault, not a bystander).
EXPECTED_INVARIANT = {
    "quorum-intersection": "quorum-intersection",
    "early-lock-release": "lock-discipline",
    "timestamp-inversion": "timestamp-order",
    "log-divergence": "log-consistency",
    "shard-misroute": "genuine-partial-replication",
    "stale-assignment": "reconfig-epoch",
}
