"""Bounded-memory soak runs: millions of audited operations, O(window) state.

The tracer's ring retention and the auditor's streaming monitors bound
*observability* memory, but a long run leaks through the *system's* own
bookkeeping too: replica logs, snapshot coverage sets, the transaction
table, committed-group history, and the per-object execution recorders
all grow with every transaction.  :class:`SoakMaintenance` closes each
of those leaks with the administrative machinery the replication layer
already exposes, on a fixed cadence at transaction boundaries:

1. **Compact** every commit-order object whose replicas are all up
   (:func:`~repro.replication.snapshot.compact`, restricted to the
   object's replica set so genuine partial replication is preserved);
2. **Prune** the resulting snapshot's coverage bookkeeping
   (:meth:`~repro.replication.snapshot.Snapshot.prune`) and install the
   pruned snapshot on every replica via the administrative
   :meth:`~repro.replication.repository.Repository.replace_snapshot`;
3. **Trim** the object's committed-group history up to the snapshot
   boundary (:meth:`~repro.replication.object.SynchronizationState.trim_committed`);
4. **Retire** finalized transactions whose every touched object was
   swept this round (:meth:`~repro.txn.manager.TransactionManager.retire`),
   after dropping their rows from each touched object's
   :class:`~repro.replication.object.HistoryRecorder`;
5. **Trim** each object's legality-oracle replay memo once it exceeds a
   node threshold (:meth:`~repro.spec.legality.LegalityOracle.trim_cache`).
   The memo is append-only: every distinct view prefix and every
   compacted base state allocates trie nodes for ever-fresh histories
   that will never be replayed again, which is exactly the wrong trade
   for an endurance run.  Dropping it is pure cache eviction — queries
   rebuild what they need.

The workload itself must also hold state bounded: a uniform mix over a
queue's alphabet (two ``Enq`` variants, one ``Deq``) enqueues twice as
often as it dequeues, so per-object state — and with it every snapshot,
view, and replay frontier — grows linearly forever.  :func:`soak_mix`
up-weights consumers so the queue length is a random walk with negative
drift, keeping expected state O(1).

Retirement soundness: a finalized transaction's log entries were written
to full final quorums, so a sweep that drains a transversal of every
final coterie observes them all and folds (or discards) them; once every
touched object has been swept after the transaction finalized, nothing
in the system can name it again.  The sweep therefore only runs when
every replica of the object is reachable — a down site just defers that
object's maintenance to a later round.

:func:`run_soak` drives the whole experiment: an all-hybrid sharded
keyspace (:func:`~repro.replication.keyspace.soak_keyspace`), a
ring-retention tracer, the streaming auditor, and the maintenance loop,
returning a :class:`SoakResult` whose ``retained_ok`` asserts the
tentpole claim — peak retained spans never exceeded the window.

:func:`streaming_matches_deep` is the equivalence half of the story: it
attaches a deep and a streaming auditor to the *same* tracer over one
tier-1 workload and byte-compares their verdicts on the streaming
invariant set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.errors import SpecificationError, UnavailableError
from repro.obs.audit import (
    DEFAULT_STREAM_WINDOW,
    STREAMING_INVARIANTS,
    AuditReport,
    Auditor,
)
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = [
    "SoakConfig",
    "SoakMaintenance",
    "SoakResult",
    "run_soak",
    "soak_mix",
    "streaming_matches_deep",
]


def soak_mix(spec, *, drain: float = 1.5):
    """A drain-biased :class:`~repro.sim.workload.OperationMix` over ``spec``.

    Producer invocations (those carrying arguments — they add state)
    keep weight 1.0 each; consumer invocations (argument-free — they
    remove or observe state) split ``drain ×`` the total producer weight
    between them, so consumption outpaces production and per-object
    state stays bounded in expectation.  Objects whose alphabet is all
    producers or all consumers fall back to uniform weights.
    """
    from repro.sim.workload import OperationMix

    entries: list[tuple[str, Any, float]] = []
    for obj in spec.objects:
        invocations = list(obj.datatype.invocations())
        producers = [inv for inv in invocations if inv.args]
        consumers = [inv for inv in invocations if not inv.args]
        if not producers or not consumers:
            entries.extend((obj.name, inv, 1.0) for inv in invocations)
            continue
        consumer_weight = drain * len(producers) / len(consumers)
        entries.extend((obj.name, inv, 1.0) for inv in producers)
        entries.extend((obj.name, inv, consumer_weight) for inv in consumers)
    return OperationMix.weighted(entries)


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one bounded-memory soak run.  Deterministic per seed."""

    #: Target executed operations (every recorded outcome counts: ok,
    #: degraded, conflict, unavailable, aborted — each was an audited
    #: operation attempt).
    ops: int = 1_000_000
    seed: int = 0
    sites: int = 5
    objects: int = 8
    replication_factor: int = 3
    #: Tracer ring size *and* streaming-monitor window.
    window: int = 512
    #: Run a maintenance round every this many started transactions.
    compact_every: int = 25
    #: Attach the streaming auditor (off = raw throughput baseline,
    #: untraced).
    audit: bool = True
    ops_per_transaction: int = 3
    concurrency: int = 4

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise SpecificationError("a soak needs at least one operation")
        if self.window < 1:
            raise SpecificationError("the soak window must be positive")
        if self.compact_every < 1:
            raise SpecificationError("compact_every must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops": self.ops,
            "seed": self.seed,
            "sites": self.sites,
            "objects": self.objects,
            "replication_factor": self.replication_factor,
            "window": self.window,
            "compact_every": self.compact_every,
            "audit": self.audit,
            "ops_per_transaction": self.ops_per_transaction,
            "concurrency": self.concurrency,
        }


class SoakMaintenance:
    """Periodic compaction + retirement keeping system bookkeeping bounded."""

    def __init__(self, cluster, *, every: int = 25, oracle_cache_limit: int = 2048):
        self.cluster = cluster
        self.every = every
        self.oracle_cache_limit = oracle_cache_limit
        self._countdown = every
        self.rounds = 0
        self.compactions = 0
        self.pruned_actions = 0
        self.retired_txns = 0
        self.trimmed_groups = 0
        self.recorder_rows_dropped = 0
        self.skipped_objects = 0
        self.oracle_trims = 0

    # The WorkloadGenerator hook: fires just before each *new*
    # transaction begins, i.e. at a boundary where no operation is
    # mid-flight (pool transactions are between operations).
    def hook(self, _index: int) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.every
        self.run_round()

    def _replicas_of(self, name: str) -> tuple[int, ...]:
        placement = self.cluster.placement
        if placement is not None:
            return placement.replicas(name)
        return tuple(range(self.cluster.network.n_sites))

    def run_round(self) -> None:
        """One full sweep: compact, prune, trim, then retire."""
        from repro.replication.snapshot import compact
        from repro.sim.network import Timeout

        tm = self.cluster.tm
        network = self.cluster.network
        repositories = self.cluster.repositories
        self.rounds += 1
        swept: set[str] = set()
        for name, obj in tm.objects.items():
            if obj.cc.serialization_order != "commit":
                continue  # static atomicity cannot compact (see snapshot.py)
            replicas = self._replicas_of(name)
            if not all(network.is_up(site) for site in replicas):
                self.skipped_objects += 1
                continue
            try:
                snapshot = compact(
                    network,
                    repositories,
                    obj,
                    tm,
                    coordinator_site=replicas[0],
                    sites=replicas,
                )
            except (UnavailableError, Timeout):
                self.skipped_objects += 1
                continue
            if snapshot is not None:
                self.compactions += 1
                pruned = snapshot.prune()
                if pruned is not snapshot:
                    self.pruned_actions += pruned.retired
                    for site in replicas:
                        repositories[site].replace_snapshot(name, pruned)
                if snapshot.last_commit_ts is not None:
                    self.trimmed_groups += obj.sync.trim_committed(
                        snapshot.last_commit_ts
                    )
            # ``None`` still counts as swept: the transversal was
            # drained and held no unfolded finalized entries.
            swept.add(name)
        self._retire(swept)
        self._trim_oracles()

    def _trim_oracles(self) -> None:
        """Evict replay memos past the node limit (local, no network)."""
        seen: set[int] = set()
        for obj in self.cluster.tm.objects.values():
            oracle = obj.oracle
            if id(oracle) in seen:
                continue
            seen.add(id(oracle))
            if oracle.cache_nodes() > self.oracle_cache_limit:
                oracle.trim_cache()
                self.oracle_trims += 1

    def _retire(self, swept: set[str]) -> None:
        """Forget finalized transactions fully covered by this sweep."""
        if not swept:
            return
        tm = self.cluster.tm
        retirable = [
            txn
            for txn in tm.transactions()
            if not txn.is_active and set(txn.touched) <= swept
        ]
        if not retirable:
            return
        by_object: dict[str, set] = {}
        for txn in retirable:
            for name in txn.touched:
                by_object.setdefault(name, set()).add(txn.id)
        for name, actions in by_object.items():
            self.recorder_rows_dropped += tm.object(name).recorder.forget(
                actions
            )
        self.retired_txns += tm.retire([txn.id for txn in retirable])

    def to_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "compactions": self.compactions,
            "pruned_actions": self.pruned_actions,
            "retired_txns": self.retired_txns,
            "trimmed_groups": self.trimmed_groups,
            "recorder_rows_dropped": self.recorder_rows_dropped,
            "skipped_objects": self.skipped_objects,
            "oracle_trims": self.oracle_trims,
        }


@dataclass
class SoakResult:
    """Everything a soak run proved, machine-readable."""

    config: SoakConfig
    ops: int = 0
    transactions: int = 0
    commits: int = 0
    aborts: int = 0
    elapsed: float = 0.0
    sim_time: float = 0.0
    retention: str = "ring"
    retained_spans: int = 0
    peak_retained: int = 0
    retained_ok: bool = True
    #: High-water mark of the streaming auditor's own state cells
    #: (monitor windows + recent-event ring + open-transaction labels).
    audit_cells_peak: int = 0
    #: Live transaction-table size at the end (bounded by retirement).
    live_txns: int = 0
    maintenance: dict[str, Any] = field(default_factory=dict)
    report: AuditReport | None = None

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def ok(self) -> bool:
        return (
            self.ops >= self.config.ops
            and self.retained_ok
            and (self.report is None or self.report.ok)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "ops": self.ops,
            "transactions": self.transactions,
            "commits": self.commits,
            "aborts": self.aborts,
            "elapsed": round(self.elapsed, 3),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "sim_time": round(self.sim_time, 1),
            "retention": self.retention,
            "retained_spans": self.retained_spans,
            "peak_retained": self.peak_retained,
            "retained_ok": self.retained_ok,
            "audit_cells_peak": self.audit_cells_peak,
            "live_txns": self.live_txns,
            "maintenance": dict(self.maintenance),
            "audit": None if self.report is None else self.report.to_dict(),
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"soak: {self.ops:,} operations / {self.transactions:,} "
            f"transactions in {self.elapsed:.1f}s wall "
            f"({self.ops_per_sec:,.0f} ops/s, seed {self.config.seed})",
            f"  keyspace: {self.config.objects} hybrid queues over "
            f"{self.config.sites} sites (rf {self.config.replication_factor})",
            f"  retention: {self.retention}(window={self.config.window}) — "
            f"peak {self.peak_retained} retained spans "
            f"[{'OK' if self.retained_ok else 'EXCEEDED'}]",
            f"  audit state peak: {self.audit_cells_peak} cells; "
            f"live transactions at end: {self.live_txns}",
        ]
        m = self.maintenance
        if m:
            lines.append(
                f"  maintenance: {m.get('rounds', 0)} rounds, "
                f"{m.get('compactions', 0)} compactions, "
                f"{m.get('pruned_actions', 0)} actions pruned, "
                f"{m.get('retired_txns', 0)} transactions retired"
            )
        if self.report is not None:
            lines.append(
                "  audit: "
                + (
                    "no violations"
                    if self.report.ok
                    else "VIOLATIONS: "
                    + ", ".join(self.report.violated_invariants)
                )
            )
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_soak(config: SoakConfig) -> SoakResult:
    """Execute one bounded-memory soak run to completion."""
    from repro.replication.cluster import build_keyspace
    from repro.replication.keyspace import soak_keyspace
    from repro.sim.workload import WorkloadGenerator

    spec = soak_keyspace(
        config.objects,
        config.sites,
        replication_factor=config.replication_factor,
    )
    if config.audit:
        tracer: Tracer = Tracer(retention="ring", window=config.window)
    else:
        tracer = NULL_TRACER
    cluster = build_keyspace(spec, seed=config.seed, tracer=tracer)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        soak_mix(spec),
        ops_per_transaction=config.ops_per_transaction,
        concurrency=config.concurrency,
    )
    maintenance = SoakMaintenance(cluster, every=config.compact_every)
    generator.on_transaction_start = maintenance.hook
    auditor = (
        Auditor(cluster, mode="streaming", window=config.window)
        if config.audit
        else None
    )

    result = SoakResult(
        config=config, retention="ring" if config.audit else "none"
    )
    wall_start = perf_counter()
    audit_cells_peak = 0
    started = 0
    while result.ops < config.ops:
        remaining = config.ops - result.ops
        batch = max(32, min(2000, remaining // config.ops_per_transaction + 1))
        generator.run(batch)
        started += batch
        result.ops = sum(generator.metrics.outcomes.values())
        if auditor is not None:
            cells = sum(auditor.retained_state().values())
            audit_cells_peak = max(audit_cells_peak, cells)
    result.elapsed = perf_counter() - wall_start
    result.transactions = started
    result.commits = cluster.tm.commits
    result.aborts = cluster.tm.aborts
    result.sim_time = cluster.sim.now
    result.retained_spans = getattr(tracer, "retained_spans", 0)
    result.peak_retained = getattr(tracer, "peak_retained", 0)
    result.retained_ok = (
        not config.audit or result.peak_retained <= config.window
    )
    result.audit_cells_peak = audit_cells_peak
    result.live_txns = len(list(cluster.tm.transactions()))
    result.maintenance = maintenance.to_dict()
    if auditor is not None:
        result.report = auditor.finish()
    return result


def streaming_matches_deep(
    *,
    seed: int = 0,
    sites: int = 3,
    transactions: int = 12,
    objects: int = 1,
    placement: str = "all",
    window: int = DEFAULT_STREAM_WINDOW,
    crashes: bool = False,
    mutate: str | None = None,
) -> dict[str, Any]:
    """One workload, two auditors, byte-compared verdicts.

    Builds the standard CLI workload (the tier-1 shape), attaches a
    deep auditor *and* a streaming auditor to the same tracer, runs it
    once, and compares ``json.dumps(report.verdict(STREAMING_INVARIANTS),
    sort_keys=True)`` byte for byte.  With ``mutate`` the seeded
    protocol sabotage is applied after both auditors have pinned the
    declared configuration, so both must flag it identically.
    """
    import argparse

    from repro.__main__ import _build_workload

    args = argparse.Namespace(
        seed=seed,
        sites=sites,
        transactions=transactions,
        crashes=crashes,
        drop_probability=0.0,
        objects=objects,
        placement=placement,
    )
    tracer = Tracer()
    cluster, generator = _build_workload(args, tracer=tracer)
    deep = Auditor(cluster, mode="deep")
    streaming = Auditor(cluster, mode="streaming", window=window)
    if mutate is not None:
        from repro.obs.mutations import MUTATIONS

        MUTATIONS[mutate](cluster)
    generator.run(transactions)
    deep_verdict = json.dumps(
        deep.finish().verdict(STREAMING_INVARIANTS), sort_keys=True
    )
    streaming_verdict = json.dumps(
        streaming.finish().verdict(STREAMING_INVARIANTS), sort_keys=True
    )
    return {
        "case": {
            "seed": seed,
            "sites": sites,
            "transactions": transactions,
            "objects": objects,
            "placement": placement,
            "window": window,
            "crashes": crashes,
            "mutate": mutate,
        },
        "match": deep_verdict == streaming_verdict,
        "deep": deep_verdict,
        "streaming": streaming_verdict,
    }
