"""Trace exporters: JSONL, human-readable tree, and Chrome trace JSON.

Three renderings of the same span forest:

* :func:`to_jsonl` / :func:`parse_jsonl` — one JSON object per line,
  lossless (round-trips through :meth:`Span.to_dict`), suitable for
  post-hoc analysis à la k-atomicity trace verification;
* :func:`render_tree` — an indented tree with simulated timestamps, the
  thing a human reads to see why an operation went unavailable;
* :func:`to_chrome_trace` — the Chrome trace-event format, loadable in
  ``chrome://tracing`` / Perfetto: complete (``"ph": "X"``) events with
  microsecond ``ts``/``dur``, instant events for point markers, one
  track (``tid``) per site.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.obs.trace import Span

#: Chrome trace timestamps are integral microseconds; simulated time is
#: unit-free, so scale it up enough that sub-unit latencies stay visible.
_CHROME_TIME_SCALE = 1000.0


# -- JSONL ------------------------------------------------------------------


def to_jsonl(spans: Iterable[Span]) -> str:
    """One span per line, creation order preserved."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in spans)


def parse_jsonl(text: str) -> list[Span]:
    """Inverse of :func:`to_jsonl` (blank lines ignored)."""
    return [
        Span.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# -- human-readable tree ----------------------------------------------------


def _attr_text(span: Span) -> str:
    if not span.attrs:
        return ""
    parts = []
    for key in sorted(span.attrs):
        value = span.attrs[key]
        if isinstance(value, (list, tuple, set, frozenset)):
            value = "[" + ",".join(str(v) for v in sorted(value, key=str)) + "]"
        parts.append(f"{key}={value}")
    return " " + " ".join(parts)


def _span_line(span: Span) -> str:
    when = (
        f"[{span.start:.2f}]"
        if span.kind == "event" or not span.finished
        else f"[{span.start:.2f} → {span.end:.2f}]"
    )
    site = f" @site{span.site}" if span.site is not None else ""
    return f"{span.name} {when} {span.outcome}{site}{_attr_text(span)}"


def walk_forest(spans: Sequence[Span]):
    """Depth-first (span, depth) pairs; unknown parents become roots."""
    ids = {span.span_id for span in spans}
    by_parent: dict[int | None, list[Span]] = {}
    for span in spans:
        key = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(key, []).append(span)

    def visit(parent_key, depth):
        for span in by_parent.get(parent_key, ()):
            yield span, depth
            yield from visit(span.span_id, depth + 1)

    yield from visit(None, 0)


def render_tree(spans: Sequence[Span]) -> str:
    """The indented span forest with simulated timestamps."""
    if not spans:
        return "(no spans recorded)"
    return "\n".join(
        "  " * depth + _span_line(span) for span, depth in walk_forest(spans)
    )


# -- Chrome trace format ----------------------------------------------------


def to_chrome_trace(spans: Sequence[Span]) -> str:
    """The span forest as Chrome trace-event JSON.

    Durations use complete events (``ph: "X"``); zero-length point
    markers become instant events (``ph: "i"``).  ``tid`` is the span's
    site (-1 for site-less spans such as transactions), so
    ``chrome://tracing`` lays sites out as separate tracks.  Metadata
    events (``ph: "M"``) name the process and each site track, so the
    viewer shows "site 2" instead of a bare tid.
    """
    events = []
    tids: set[int] = set()
    for span in spans:
        tid = span.site if span.site is not None else -1
        tids.add(tid)
        args = {"outcome": span.outcome, "span_id": span.span_id}
        for key, value in span.attrs.items():
            if isinstance(value, (list, tuple, set, frozenset)):
                value = [str(v) for v in sorted(value, key=str)]
            args[key] = value
        base = {
            "name": span.name,
            "cat": span.kind,
            "pid": 0,
            "tid": tid,
            "ts": span.start * _CHROME_TIME_SCALE,
            "args": args,
        }
        if span.kind == "event" or not span.finished:
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append(
                {
                    **base,
                    "ph": "X",
                    "dur": max(0.0, span.duration) * _CHROME_TIME_SCALE,
                }
            )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro simulated cluster"},
        }
    ]
    for tid in sorted(tids):
        label = "coordinator" if tid < 0 else f"site {tid}"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"name": label},
            }
        )
    document = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "clock": "simulated"},
    }
    return json.dumps(document, indent=2)


EXPORTERS = {
    "jsonl": to_jsonl,
    "tree": render_tree,
    "chrome": to_chrome_trace,
}


def export(spans: Sequence[Span], fmt: str) -> str:
    """Dispatch on format name ('jsonl', 'tree', 'chrome')."""
    try:
        exporter = EXPORTERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown trace format {fmt!r}; choose from {sorted(EXPORTERS)}"
        ) from None
    return exporter(spans)
