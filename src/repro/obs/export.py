"""Trace exporters: JSONL, human-readable tree, and Chrome trace JSON.

Three renderings of the same span forest:

* :func:`to_jsonl` / :func:`parse_jsonl` — one JSON object per line,
  lossless (round-trips through :meth:`Span.to_dict`), suitable for
  post-hoc analysis à la k-atomicity trace verification;
* :func:`render_tree` — an indented tree with simulated timestamps, the
  thing a human reads to see why an operation went unavailable;
* :func:`to_chrome_trace` — the Chrome trace-event format, loadable in
  ``chrome://tracing`` / Perfetto: complete (``"ph": "X"``) events with
  microsecond ``ts``/``dur``, instant events for point markers, one
  track (``tid``) per site.

Each batch exporter materializes the whole span list, which caps trace
size at available memory.  The streaming counterparts —
:class:`JsonlStreamWriter` and :class:`ChromeTraceStreamWriter` — are
:class:`~repro.obs.trace.TraceListener`\\ s that flush each span to a
file handle the moment it closes, so a ring-retention tracer
(``Tracer(retention="ring", window=W)``) can export a run of any length
in O(window) memory.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from repro.obs.trace import Span, TraceListener

#: Chrome trace timestamps are integral microseconds; simulated time is
#: unit-free, so scale it up enough that sub-unit latencies stay visible.
_CHROME_TIME_SCALE = 1000.0


# -- JSONL ------------------------------------------------------------------


def to_jsonl(spans: Iterable[Span]) -> str:
    """One span per line, creation order preserved."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in spans)


def parse_jsonl(text: str) -> list[Span]:
    """Inverse of :func:`to_jsonl` (blank lines ignored)."""
    return [
        Span.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# -- human-readable tree ----------------------------------------------------


def _attr_text(span: Span) -> str:
    if not span.attrs:
        return ""
    parts = []
    for key in sorted(span.attrs):
        value = span.attrs[key]
        if isinstance(value, (list, tuple, set, frozenset)):
            value = "[" + ",".join(str(v) for v in sorted(value, key=str)) + "]"
        parts.append(f"{key}={value}")
    return " " + " ".join(parts)


def _span_line(span: Span) -> str:
    when = (
        f"[{span.start:.2f}]"
        if span.kind == "event" or not span.finished
        else f"[{span.start:.2f} → {span.end:.2f}]"
    )
    site = f" @site{span.site}" if span.site is not None else ""
    return f"{span.name} {when} {span.outcome}{site}{_attr_text(span)}"


def walk_forest(spans: Sequence[Span]):
    """Depth-first (span, depth) pairs; unknown parents become roots."""
    ids = {span.span_id for span in spans}
    by_parent: dict[int | None, list[Span]] = {}
    for span in spans:
        key = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(key, []).append(span)

    def visit(parent_key, depth):
        for span in by_parent.get(parent_key, ()):
            yield span, depth
            yield from visit(span.span_id, depth + 1)

    yield from visit(None, 0)


def render_tree(spans: Sequence[Span]) -> str:
    """The indented span forest with simulated timestamps."""
    if not spans:
        return "(no spans recorded)"
    return "\n".join(
        "  " * depth + _span_line(span) for span, depth in walk_forest(spans)
    )


# -- Chrome trace format ----------------------------------------------------


#: The ``otherData`` block every Chrome-trace document carries.
_CHROME_OTHER_DATA = {"source": "repro.obs", "clock": "simulated"}


def _chrome_event(span: Span) -> dict:
    """One span as a Chrome trace event (complete or instant)."""
    tid = span.site if span.site is not None else -1
    args = {"outcome": span.outcome, "span_id": span.span_id}
    for key, value in span.attrs.items():
        if isinstance(value, (list, tuple, set, frozenset)):
            value = [str(v) for v in sorted(value, key=str)]
        args[key] = value
    base = {
        "name": span.name,
        "cat": span.kind,
        "pid": 0,
        "tid": tid,
        "ts": span.start * _CHROME_TIME_SCALE,
        "args": args,
    }
    if span.kind == "event" or not span.finished:
        return {**base, "ph": "i", "s": "t"}
    return {**base, "ph": "X", "dur": max(0.0, span.duration) * _CHROME_TIME_SCALE}


def _chrome_process_metadata() -> dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "ts": 0,
        "args": {"name": "repro simulated cluster"},
    }


def _chrome_thread_metadata(tid: int) -> dict:
    label = "coordinator" if tid < 0 else f"site {tid}"
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "ts": 0,
        "args": {"name": label},
    }


def to_chrome_trace(spans: Sequence[Span]) -> str:
    """The span forest as Chrome trace-event JSON.

    Durations use complete events (``ph: "X"``); zero-length point
    markers become instant events (``ph: "i"``).  ``tid`` is the span's
    site (-1 for site-less spans such as transactions), so
    ``chrome://tracing`` lays sites out as separate tracks.  Metadata
    events (``ph: "M"``) name the process and each site track, so the
    viewer shows "site 2" instead of a bare tid.
    """
    events = [_chrome_event(span) for span in spans]
    tids = sorted({event["tid"] for event in events})
    metadata = [_chrome_process_metadata()]
    metadata.extend(_chrome_thread_metadata(tid) for tid in tids)
    document = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": dict(_CHROME_OTHER_DATA),
    }
    return json.dumps(document, indent=2)


# -- streaming writers ------------------------------------------------------


class JsonlStreamWriter(TraceListener):
    """Flush each span as one JSONL line the moment it closes.

    Attach to a tracer with :meth:`~repro.obs.trace.Tracer.add_listener`;
    the produced stream is line-for-line identical to :func:`to_jsonl`
    over the same spans (in close order rather than creation order),
    and :func:`parse_jsonl` reads it back.
    """

    def __init__(self, handle: IO[str]):
        self._handle = handle
        self.spans_written = 0

    def on_span_end(self, span: Span) -> None:
        self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self.spans_written += 1

    def close(self) -> None:
        """Flush buffered output (the handle itself stays open)."""
        self._handle.flush()


class ChromeTraceStreamWriter(TraceListener):
    """Incrementally write a Chrome trace document, one event per close.

    The document envelope (``otherData``, ``displayTimeUnit``, the
    ``traceEvents`` opening bracket) is written up front; each closing
    span appends one event built by the same helper the batch exporter
    uses, and per-track metadata is emitted the first time a track
    (site) appears.  :meth:`close` terminates the array and object —
    until then the file is a truncated-but-recoverable JSON prefix,
    which is the normal trade of streaming trace writers.
    """

    def __init__(self, handle: IO[str]):
        self._handle = handle
        self._seen_tids: set[int] = set()
        self._events_written = 0
        #: Span events flushed (excludes process/thread metadata events).
        self.spans_written = 0
        self._closed = False
        handle.write(
            '{"displayTimeUnit": "ms", "otherData": '
            + json.dumps(_CHROME_OTHER_DATA, sort_keys=True)
            + ', "traceEvents": [\n'
        )
        self._append(_chrome_process_metadata())

    def _append(self, event: dict) -> None:
        prefix = ",\n" if self._events_written else ""
        self._handle.write(prefix + json.dumps(event))
        self._events_written += 1

    def on_span_end(self, span: Span) -> None:
        if self._closed:
            return
        tid = span.site if span.site is not None else -1
        if tid not in self._seen_tids:
            self._seen_tids.add(tid)
            self._append(_chrome_thread_metadata(tid))
        self._append(_chrome_event(span))
        self.spans_written += 1

    def close(self) -> None:
        """Terminate the JSON document; further spans are ignored."""
        if not self._closed:
            self._closed = True
            self._handle.write("\n]}\n")
            self._handle.flush()


#: Formats that support incremental stream-flushing.
STREAM_WRITERS = {
    "jsonl": JsonlStreamWriter,
    "chrome": ChromeTraceStreamWriter,
}


def open_stream_writer(fmt: str, handle: IO[str]) -> TraceListener:
    """A stream-flushing writer for ``fmt`` ('jsonl' or 'chrome')."""
    try:
        writer = STREAM_WRITERS[fmt]
    except KeyError:
        raise ValueError(
            f"format {fmt!r} cannot stream; choose from {sorted(STREAM_WRITERS)}"
        ) from None
    return writer(handle)


EXPORTERS = {
    "jsonl": to_jsonl,
    "tree": render_tree,
    "chrome": to_chrome_trace,
}


def export(spans: Sequence[Span], fmt: str) -> str:
    """Dispatch on format name ('jsonl', 'tree', 'chrome')."""
    try:
        exporter = EXPORTERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown trace format {fmt!r}; choose from {sorted(EXPORTERS)}"
        ) from None
    return exporter(spans)
