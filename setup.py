"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs cannot build; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
