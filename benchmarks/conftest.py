"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's figures/examples and
emits its rows both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the EXPERIMENTS.md numbers can be
traced to a run.  Machine-readable benchmarks go through
:func:`emit_json`, which stamps every ``BENCH_*.json`` with the
environment that produced it — worker count, kernel-cache state, CPU
budget — so numbers from different machines can be compared honestly.

Uniform knobs (apply to every benchmark in this directory):

* ``--jobs N`` — worker processes for kernel derivations and fan-out
  benchmarks (default: the ``REPRO_JOBS`` environment variable, else 1);
* ``--cache-state {cold,warm}`` — whether benchmarks may reuse a warmed
  kernel-artifact cache between tests (default cold: each session gets
  a fresh temporary cache directory either way; ``warm`` additionally
  pre-derives the standard catalog before the first benchmark runs).

The session always repoints ``REPRO_CACHE_DIR`` at a temporary
directory, so benchmark runs never read or pollute a developer's
``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: What the current benchmark's process-pool actually did.  Benchmarks
#: that shard work across processes call :func:`record_parallelism`
#: before emitting; everything else keeps the honest serial default, so
#: every artifact says whether a pool ran — no artifact implies one did.
_PARALLELISM = {"pool_engaged": False, "parallel_speedup": 1.0}

#: Whether the current benchmark ran with the adaptive quorum tuner
#: driving reconfigurations.  Benchmarks that enable tuning call
#: :func:`record_tuner` before emitting; the honest default is "off",
#: so every artifact says whether its numbers include online
#: reconfiguration — regression comparisons never conflate the two.
_TUNER = {"enabled": False}

#: Which workload scenario (``repro.scenarios`` catalog name) drove the
#: current benchmark.  Scenario-aware benchmarks call
#: :func:`record_scenario` before emitting; the honest default is
#: ``"default"`` — the legacy closed-loop uniform workload every
#: pre-catalog artifact implicitly ran.
_SCENARIO = {"name": "default"}


def record_scenario(name: str) -> None:
    """Record the catalog scenario the current benchmark runs.

    Stamped as ``scenario: <name>`` into the next :func:`emit_json`
    environment block, so artifacts from different traffic shapes are
    never compared as if they measured the same workload.
    """
    _SCENARIO["name"] = str(name)


def record_tuner(enabled: bool) -> None:
    """Record whether the adaptive quorum tuner drove this benchmark.

    Stamped as ``tuner: "on"|"off"`` into the next :func:`emit_json`
    environment block.
    """
    _TUNER["enabled"] = bool(enabled)


def record_parallelism(pool_engaged: bool, parallel_speedup: float) -> None:
    """Record the current benchmark's real pool behaviour.

    ``pool_engaged`` is whether a process pool actually did work (the
    ``parallel_used`` flag from :func:`repro.sim.trials.run_trials` /
    :func:`repro.compute.parallel.parallel_map` — ``False`` on serial
    fallbacks), and ``parallel_speedup`` the measured one-job /
    sharded wall ratio (1.0 when nothing was sharded).  Both are
    stamped into the next :func:`emit_json` environment block and the
    next :func:`report` footer.
    """
    _PARALLELISM["pool_engaged"] = bool(pool_engaged)
    _PARALLELISM["parallel_speedup"] = float(parallel_speedup)


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/.

    A footer line surfaces the pool record for the run (see
    :func:`record_parallelism`), so the human-readable summary and the
    JSON stamp never disagree about whether work was sharded.
    """
    state = "engaged" if _PARALLELISM["pool_engaged"] else "not engaged"
    text = (
        f"{text}\n"
        f"parallelism: pool {state}, "
        f"{_PARALLELISM['parallel_speedup']:.2f}x speedup"
    )
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(
    name: str,
    payload: dict,
    *,
    jobs: int | None = None,
    cache_state: str | None = None,
    objects: int = 1,
    placement: str = "all",
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` with the standard environment stamp.

    ``objects`` and ``placement`` describe the keyspace shape the
    benchmark ran against (``1``/``"all"`` is the legacy single-object
    fully replicated workload), so regression comparisons never
    conflate a one-object run with a sharded one.  The stamp also
    records the process-wide span-retention gauges
    (``obs.retained_spans`` / ``obs.peak_retained``), so any benchmark
    that quietly retained an unbounded trace shows it in its own
    artifact.
    """
    from repro.compute.parallel import available_cpus, resolve_jobs
    from repro.obs.trace import process_peak_retained, process_retained_spans

    stamped = dict(payload)
    stamped["environment"] = {
        "python": platform.python_version(),
        "cpus": available_cpus(),
        "jobs": resolve_jobs(jobs),
        "cache_state": cache_state or "cold",
        "cache_dir": os.environ.get("REPRO_CACHE_DIR", ""),
        "objects": objects,
        "placement": placement,
        "obs.retained_spans": process_retained_spans(),
        "obs.peak_retained": process_peak_retained(),
        "pool_engaged": _PARALLELISM["pool_engaged"],
        "parallel_speedup": round(_PARALLELISM["parallel_speedup"], 4),
        "tuner": "on" if _TUNER["enabled"] else "off",
        "scenario": _SCENARIO["name"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"BENCH_{name}.json"
    out.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    return out


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("repro benchmarks")
    group.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for kernel derivations and fan-out "
        "benchmarks (default: REPRO_JOBS, else 1)",
    )
    group.addoption(
        "--cache-state",
        choices=("cold", "warm"),
        default="cold",
        help="kernel-artifact cache state benchmarks start from "
        "(default: cold; warm pre-derives the standard catalog)",
    )


@pytest.fixture(autouse=True)
def _reset_parallelism():
    """Reset the pool, tuner, and scenario records so benchmarks never
    inherit a predecessor's."""
    _PARALLELISM["pool_engaged"] = False
    _PARALLELISM["parallel_speedup"] = 1.0
    _TUNER["enabled"] = False
    _SCENARIO["name"] = "default"
    yield


@pytest.fixture(scope="session")
def bench_jobs(request: pytest.FixtureRequest) -> int:
    """The session's effective ``--jobs`` value."""
    from repro.compute.parallel import resolve_jobs

    return resolve_jobs(request.config.getoption("--jobs"))


@pytest.fixture(scope="session")
def bench_cache_state(request: pytest.FixtureRequest) -> str:
    return str(request.config.getoption("--cache-state"))


@pytest.fixture(scope="session", autouse=True)
def _hermetic_kernel_cache(
    request: pytest.FixtureRequest,
    tmp_path_factory: pytest.TempPathFactory,
):
    """Point the kernel cache at a session-temporary directory.

    ``--cache-state warm`` pre-derives the standard catalog into it, so
    warm-path benchmarks measure cache loads rather than derivations.
    """
    from repro.compute.artifacts import clear_memory_cache, default_warm_plan, derive_catalog

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    clear_memory_cache()
    if request.config.getoption("--cache-state") == "warm":
        derive_catalog(
            default_warm_plan(), jobs=request.config.getoption("--jobs")
        )
        clear_memory_cache()
    yield
    clear_memory_cache()
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
