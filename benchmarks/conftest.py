"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's figures/examples and
emits its rows both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the EXPERIMENTS.md numbers can be
traced to a run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
