"""Figure 1-1 — the concurrency relations among the three properties.

Regenerates the paper's concurrency lattice by exhaustively classifying
every bounded behavioral history of the Queue (the paper's running
example) under static, hybrid, and strong dynamic atomicity:

* hybrid permits strictly more concurrency than strong dynamic;
* static is incomparable to hybrid and to dynamic.
"""

from conftest import report

from repro.atomicity.compare import compare_concurrency
from repro.atomicity.explore import ExplorationBounds
from repro.core.report import figure_1_1
from repro.types import Queue


def _classify():
    return compare_concurrency(
        Queue(), ExplorationBounds(max_ops=3, max_actions=2)
    )


def test_fig_1_1_concurrency_lattice(benchmark):
    comparison = benchmark.pedantic(_classify, rounds=1, iterations=1)

    # The relations of Figure 1-1, as containments of admitted sets.
    assert comparison.contains("dynamic", "hybrid")
    assert not comparison.contains("hybrid", "dynamic")
    assert comparison.incomparable("static", "hybrid")
    assert comparison.incomparable("static", "dynamic")

    report("fig_1_1_concurrency", figure_1_1(comparison))
