"""Chaos recovery latency: how fast the resilience layer repairs faults.

Runs the full seeded chaos sweep — every built-in fault profile under
the ``degraded`` retry policy — and reports, per profile:

* operations attempted / succeeded / degraded / unavailable (the paper's
  availability criterion under *composed* faults rather than the static
  coterie probabilities of the availability benchmarks);
* recovery-latency p50/p95 in simulated time, pooled over every
  heal-triggered anti-entropy catch-up the sweep performed;
* the auditor's violation count, asserted to be zero — a chaos sweep
  that loses or corrupts data is a failed benchmark, not a data point.

Results land in ``benchmarks/results/BENCH_chaos_recovery.json`` and
``chaos_recovery.txt``.
"""

from __future__ import annotations

from conftest import emit_json, report

from repro.resilience.chaos import PROFILES, run_chaos_sweep

SEEDS = (0, 1, 2, 3)
TRANSACTIONS = 16
SITES = 5
POLICY = "degraded"


def test_chaos_recovery_latency(bench_cache_state):
    verdict = run_chaos_sweep(
        seeds=SEEDS,
        profiles=PROFILES,
        policies=(POLICY,),
        transactions=TRANSACTIONS,
        n_sites=SITES,
    )
    assert verdict["ok"], verdict
    rows = {
        profile: policies[POLICY]
        for profile, policies in verdict["profiles"].items()
    }
    for profile, row in rows.items():
        assert row["violations"] == 0, (profile, row)

    payload = {
        "sweep": {
            "seeds": list(SEEDS),
            "transactions": TRANSACTIONS,
            "sites": SITES,
            "policy": POLICY,
        },
        "profiles": {
            profile: {
                "attempted": row["attempted"],
                "succeeded": row["succeeded"],
                "degraded": row["degraded"],
                "unavailable": row["unavailable"],
                "aborted_ops": row["aborted_ops"],
                "faults_applied": row["faults_applied"],
                "recovery_syncs": row["recovery_syncs"],
                "recovery_latency_p50": row["recovery_latency_p50"],
                "recovery_latency_p95": row["recovery_latency_p95"],
                "violations": row["violations"],
            }
            for profile, row in rows.items()
        },
        "ok": verdict["ok"],
    }
    emit_json("chaos_recovery", payload, cache_state=bench_cache_state)

    lines = [
        f"{'profile':<10} {'faults':>6} {'att':>5} {'ok':>5} {'degr':>5} "
        f"{'unav':>5} {'syncs':>5} {'rec p50':>8} {'rec p95':>8}",
        "-" * 66,
    ]
    for profile, row in rows.items():
        lines.append(
            f"{profile:<10} {row['faults_applied']:>6} {row['attempted']:>5} "
            f"{row['succeeded']:>5} {row['degraded']:>5} "
            f"{row['unavailable']:>5} {row['recovery_syncs']:>5} "
            f"{row['recovery_latency_p50']:>8.1f} "
            f"{row['recovery_latency_p95']:>8.1f}"
        )
    lines.append(
        f"policy {POLICY!r}, seeds {list(SEEDS)}, zero auditor violations "
        "across the sweep"
    )
    report("chaos_recovery", "\n".join(lines))
