"""The scenario matrix: catalog × chaos profiles × atomicity mechanisms.

Runs every catalog scenario (``repro.scenarios.SCENARIOS``) under every
chaos profile (``none`` plus crash/partition/churn/mixed) and all three
of the paper's atomicity mechanisms (blocking, multiversion, hybrid) —
the full empirical surface behind "hybrid permits a wider range of
trade-offs", rather than three point benchmarks.  Every cell is
streaming-audited at full speed; a cell with an audit violation, a
divergent replica, or unaccounted work is a failed benchmark, not a
data point.  The payload also pins ``default_matches_legacy``: the
compiled ``default`` scenario's fingerprint must equal the hand-built
legacy workload's, byte for byte.

Results land in ``benchmarks/results/BENCH_scenario_matrix.json`` and
``scenario_matrix.txt``.

Standalone: ``python benchmarks/bench_scenario_matrix.py [--quick]``
(CI's scenario-smoke job uses ``--quick``).
"""

from __future__ import annotations

from time import perf_counter

import pytest

from conftest import emit_json, record_scenario, report

from repro.resilience.chaos import PROFILES
from repro.scenarios import MECHANISMS, SCENARIOS, run_scenario

pytestmark = pytest.mark.scenarios

SCENARIO_NAMES = tuple(SCENARIOS)
QUICK_SCENARIO_NAMES = ("default", "hot-key-contention", "bursty-flash-crowd")
PROFILE_NAMES = ("none", *PROFILES)
QUICK_PROFILE_NAMES = ("none", "mixed")
MECHANISM_NAMES = tuple(sorted(MECHANISMS))
SEED = 0


def _legacy_fingerprint() -> dict:
    """The classic single-queue workload fingerprint, built by hand."""
    from repro.dependency import known
    from repro.replication.cluster import build_cluster
    from repro.sim.workload import OperationMix, WorkloadGenerator
    from repro.types import Queue

    cluster = build_cluster(3, seed=SEED)
    queue = Queue()
    cluster.add_object(
        "queue", queue, "hybrid", relation=known.ground(queue, known.QUEUE_STATIC, 5)
    )
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        OperationMix.uniform("queue", queue.invocations()),
        ops_per_transaction=3,
        concurrency=4,
    )
    metrics = generator.run(SCENARIOS["default"].transactions)
    return {
        "outcomes": {
            f"{op}/{o}": c for (op, o), c in sorted(metrics.outcomes.items())
        },
        "histories": {
            "queue": str(cluster.tm.object("queue").recorder.to_behavioral_history())
        },
        "messages_sent": cluster.network.messages_sent,
        "commits": metrics.committed_transactions,
        "aborts": metrics.aborted_transactions,
    }


def _measure_cell(scenario: str, mechanism: str, profile: str) -> dict:
    started = perf_counter()
    verdict = run_scenario(
        scenario, seed=SEED, mechanism=mechanism, profile=profile
    )
    seconds = perf_counter() - started
    fp = verdict["fingerprint"]
    return {
        "scenario": scenario,
        "mechanism": mechanism,
        "scheme": verdict["scheme"],
        "profile": profile,
        "transactions": verdict["transactions"],
        "seconds": seconds,
        "ok": verdict["ok"],
        "violations": verdict["violations"],
        "attempted": verdict["counts"]["attempted"],
        "succeeded": verdict["counts"]["succeeded"],
        "degraded": verdict["counts"]["degraded"],
        "unavailable": verdict["counts"]["unavailable"],
        "conflict": verdict["counts"]["conflict"],
        "aborted_ops": verdict["counts"]["aborted_ops"],
        "commits": fp["commits"],
        "aborts": fp["aborts"],
        "messages_sent": fp["messages_sent"],
        "faults_applied": fp["faults_applied"],
        "converged": fp["converged"],
        "audit_ok": fp["audit_ok"],
    }


def _measure(scenarios, profiles) -> dict:
    legacy = _legacy_fingerprint()
    compiled = run_scenario("default", seed=SEED)["fingerprint"]
    rows = [
        _measure_cell(scenario, mechanism, profile)
        for scenario in scenarios
        for mechanism in MECHANISM_NAMES
        for profile in profiles
    ]
    return {
        "seed": SEED,
        "scenarios": list(scenarios),
        "mechanisms": list(MECHANISM_NAMES),
        "profiles": list(profiles),
        "default_matches_legacy": all(
            compiled[key] == value for key, value in legacy.items()
        ),
        "cells": len(rows),
        "violations_total": sum(row["violations"] for row in rows),
        "rows": rows,
    }


def _render(results: dict) -> str:
    lines = [
        f"{'scenario':<19} {'mechanism':<12} {'profile':<9} {'txns':>4} "
        f"{'ok':>4} {'degr':>4} {'conf':>4} {'msgs':>6} {'faults':>6} verdict",
        "-" * 82,
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['scenario']:<19} {row['mechanism']:<12} "
            f"{row['profile']:<9} {row['transactions']:>4} "
            f"{row['succeeded']:>4} {row['degraded']:>4} "
            f"{row['conflict']:>4} {row['messages_sent']:>6} "
            f"{row['faults_applied']:>6} "
            f"{'PASS' if row['ok'] else 'FAIL'}"
        )
    lines.append(
        f"{results['cells']} cells, {results['violations_total']} audit "
        f"violations, default_matches_legacy="
        f"{results['default_matches_legacy']} (seed {results['seed']}, "
        "every cell streaming-audited)"
    )
    return "\n".join(lines)


def _check(results: dict) -> None:
    assert results["default_matches_legacy"], (
        "compiled default scenario diverged from the legacy workload"
    )
    assert results["violations_total"] == 0, results["violations_total"]
    for row in results["rows"]:
        assert row["ok"], row
        assert row["converged"], row
        if row["profile"] != "none":
            assert row["faults_applied"] > 0 or row["transactions"] < 8, row


def test_scenario_matrix(bench_cache_state):
    record_scenario("matrix")
    results = _measure(SCENARIO_NAMES, PROFILE_NAMES)
    emit_json(
        "scenario_matrix",
        results,
        cache_state=bench_cache_state,
        objects=max(SCENARIOS[name].objects for name in SCENARIO_NAMES),
    )
    report("scenario_matrix", _render(results))
    _check(results)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the trimmed CI matrix"
    )
    args = parser.parse_args(argv)
    # A private cache keeps the standalone run hermetic.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    scenarios = QUICK_SCENARIO_NAMES if args.quick else SCENARIO_NAMES
    profiles = QUICK_PROFILE_NAMES if args.quick else PROFILE_NAMES
    record_scenario("matrix")
    results = _measure(scenarios, profiles)
    emit_json(
        "scenario_matrix",
        results,
        cache_state="cold",
        objects=max(SCENARIOS[name].objects for name in scenarios),
    )
    report("scenario_matrix", _render(results))
    _check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
