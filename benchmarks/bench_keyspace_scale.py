"""Keyspace scale: throughput as the object count grows under sharding.

Sweeps the number of objects in a ring-placed keyspace (replication
factor 3 on five sites) at a fixed transaction budget and reports, per
object count:

* wall-clock seconds and committed transactions per second — the cost
  of spreading one workload over many partially replicated objects;
* messages sent per committed transaction — partial replication should
  *shrink* per-object fan-out (quorums of 3-site replica sets, not the
  whole cluster);
* mean shards per site, the storage-footprint side of the same trade;
* the auditor's verdict, asserted green — a sharded run that violates
  genuine partial replication is a failed benchmark, not a data point.

Results land in ``benchmarks/results/BENCH_keyspace_scale.json`` and
``keyspace_scale.txt``.

Standalone: ``python benchmarks/bench_keyspace_scale.py [--quick]``
(CI's keyspace-smoke job uses ``--quick``).
"""

from __future__ import annotations

from time import perf_counter

import pytest

from conftest import emit_json, report

from repro.obs.audit import Auditor
from repro.obs.trace import Tracer
from repro.replication.cluster import build_keyspace
from repro.replication.keyspace import demo_keyspace, demo_mix
from repro.sim.workload import WorkloadGenerator

pytestmark = pytest.mark.keyspace

OBJECT_COUNTS = (1, 2, 4, 8, 16)
QUICK_OBJECT_COUNTS = (1, 4, 8)
SITES = 5
TRANSACTIONS = 40
QUICK_TRANSACTIONS = 12
SEED = 0
PLACEMENT = "ring"


def _measure_case(n_objects: int, transactions: int) -> dict:
    spec = demo_keyspace(n_objects, SITES, placement=PLACEMENT)
    cluster = build_keyspace(spec, seed=SEED, tracer=Tracer())
    auditor = Auditor(cluster)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        demo_mix(spec),
        ops_per_transaction=3,
        concurrency=4,
    )
    started = perf_counter()
    generator.run(transactions)
    seconds = perf_counter() - started
    verdict = auditor.finish()
    assert verdict.ok, verdict.render()
    shard_counts = [
        len(cluster.placement.shards_of(site)) for site in range(SITES)
    ]
    commits = cluster.tm.commits
    return {
        "objects": n_objects,
        "transactions": transactions,
        "seconds": seconds,
        "commits": commits,
        "aborts": cluster.tm.aborts,
        "commits_per_second": commits / seconds if seconds else float("inf"),
        "messages_sent": cluster.network.messages_sent,
        "messages_per_commit": (
            cluster.network.messages_sent / commits if commits else 0.0
        ),
        "mean_shards_per_site": sum(shard_counts) / SITES,
        "partial": cluster.placement.is_partial,
        "audit_ok": verdict.ok,
        "audit_operations": verdict.operations,
    }


def _measure(object_counts, transactions) -> dict:
    return {
        "sites": SITES,
        "seed": SEED,
        "placement": PLACEMENT,
        "rows": [_measure_case(n, transactions) for n in object_counts],
    }


def _render(results: dict) -> str:
    lines = [
        f"{'objects':>7} {'txns':>5} {'commits':>7} {'cmt/s':>8} "
        f"{'msgs':>6} {'msg/cmt':>8} {'shards/site':>11}",
        "-" * 58,
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['objects']:>7} {row['transactions']:>5} "
            f"{row['commits']:>7} {row['commits_per_second']:>8.1f} "
            f"{row['messages_sent']:>6} {row['messages_per_commit']:>8.1f} "
            f"{row['mean_shards_per_site']:>11.1f}"
        )
    lines.append(
        f"ring placement (factor 3) on {results['sites']} sites, seed "
        f"{results['seed']}, auditor green on every row"
    )
    return "\n".join(lines)


def _check(results: dict) -> None:
    for row in results["rows"]:
        assert row["audit_ok"], row
        assert row["commits"] > 0, row
        if row["objects"] > 1:
            assert row["partial"], row


def test_keyspace_scale(bench_cache_state):
    results = _measure(OBJECT_COUNTS, TRANSACTIONS)
    emit_json(
        "keyspace_scale",
        results,
        cache_state=bench_cache_state,
        objects=max(OBJECT_COUNTS),
        placement=PLACEMENT,
    )
    report("keyspace_scale", _render(results))
    _check(results)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the trimmed CI sweep"
    )
    args = parser.parse_args(argv)
    # A private cache keeps the standalone run hermetic.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    counts = QUICK_OBJECT_COUNTS if args.quick else OBJECT_COUNTS
    transactions = QUICK_TRANSACTIONS if args.quick else TRANSACTIONS
    results = _measure(counts, transactions)
    emit_json(
        "keyspace_scale",
        results,
        cache_state="cold",
        objects=max(counts),
        placement=PLACEMENT,
    )
    report("keyspace_scale", _render(results))
    _check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
