"""Queue dependency relations (Theorems 6, 10, 11).

Regenerates the relations the paper lists for the FIFO Queue:

* the unique minimal static dependency relation (four schema pairs);
* the unique minimal dynamic dependency relation, which adds
  ``Enq(x) ≥D Enq(y);Ok()`` and drops ``Enq ≥ Deq;Ok`` — making the two
  incomparable (Theorem 11's incomparability, Figure 1-2).
"""

from conftest import report

from repro.dependency import known
from repro.dependency.dynamic_dep import minimal_dynamic_dependency
from repro.dependency.static_dep import minimal_static_dependency
from repro.spec.legality import LegalityOracle
from repro.types import Queue


def test_queue_minimal_static_relation(benchmark):
    queue = Queue()
    oracle = LegalityOracle(queue)
    relation = benchmark.pedantic(
        lambda: minimal_static_dependency(queue, 4, oracle), rounds=1, iterations=1
    )
    assert relation == known.ground(queue, known.QUEUE_STATIC, 6, oracle)
    report(
        "queue_static_relation",
        "Minimal static dependency relation for Queue (Theorem 6 search, "
        "bound 4):\n" + relation.describe(),
    )


def test_queue_minimal_dynamic_relation(benchmark):
    queue = Queue()
    oracle = LegalityOracle(queue)
    relation = benchmark.pedantic(
        lambda: minimal_dynamic_dependency(queue, 4, oracle), rounds=1, iterations=1
    )
    assert relation == known.ground(queue, known.QUEUE_DYNAMIC, 6, oracle)

    static = minimal_static_dependency(queue, 4, oracle)
    extra = relation.difference(static)
    missing = static.difference(relation)
    assert extra and missing  # incomparable, as Figure 1-2 shows
    report(
        "queue_dynamic_relation",
        "Minimal dynamic dependency relation for Queue (Theorem 10, bound 4):\n"
        + relation.describe()
        + "\n\nadded vs static (Theorem 11's Enq ≥ Enq):\n"
        + extra.describe()
        + "\n\ndropped vs static:\n"
        + missing.describe(),
    )
