"""Streaming audit: overhead, bounded retention, and verdict fidelity.

Three questions, one artifact (``BENCH_stream_audit.json``):

* **Overhead** — operations per second for the same workload untraced,
  ring-traced, streaming-audited, and deep-audited, so the cost of
  auditing-at-speed is a measured number rather than a claim;
* **Bounded memory** — a soak run (25k operations under ``--quick``,
  one million otherwise) through :func:`repro.obs.soak.run_soak`,
  asserting peak retained spans never exceeded the ring window while
  compaction + retirement kept the transaction table flat;
* **Fidelity** — the streaming auditor's verdict must byte-match the
  deep auditor's on the tier-1 workload matrix
  (:func:`repro.obs.soak.streaming_matches_deep`), and every seeded
  protocol mutation must still be flagged under a deliberately tiny
  window (16).

Results land in ``benchmarks/results/BENCH_stream_audit.json`` and
``stream_audit.txt``.

Standalone: ``python benchmarks/bench_stream_audit.py [--quick]``
(CI's soak-smoke job uses ``--quick``).
"""

from __future__ import annotations

import argparse
from time import perf_counter

import pytest

from conftest import emit_json, report

from repro.obs.audit import Auditor
from repro.obs.mutations import EXPECTED_INVARIANT, MUTATIONS
from repro.obs.soak import SoakConfig, run_soak, streaming_matches_deep
from repro.obs.trace import NULL_TRACER, Tracer

pytestmark = [pytest.mark.obs, pytest.mark.streaming]

SEED = 0
SITES = 5
OBJECTS = 6
PLACEMENT = "ring"
TRANSACTIONS = 60
QUICK_TRANSACTIONS = 20
SOAK_OPS = 1_000_000
QUICK_SOAK_OPS = 25_000
WINDOW = 512
TINY_WINDOW = 16

EQUIVALENCE_CASES = (
    {"seed": 0, "sites": 3, "transactions": 12},
    {"seed": 1, "sites": 3, "transactions": 12},
    {"seed": 0, "sites": 5, "transactions": 20, "objects": 6,
     "placement": "ring"},
    {"seed": 2, "sites": 5, "transactions": 20, "crashes": True},
)


def _overhead_case(mode: str, transactions: int) -> dict:
    """One workload timed under one observability configuration."""
    from repro.replication.cluster import build_keyspace
    from repro.replication.keyspace import demo_keyspace, demo_mix
    from repro.sim.workload import WorkloadGenerator

    spec = demo_keyspace(OBJECTS, SITES, placement=PLACEMENT)
    if mode == "untraced":
        tracer = NULL_TRACER
    elif mode == "ring":
        tracer = Tracer(retention="ring", window=WINDOW)
    else:  # streaming-audit / deep-audit
        tracer = Tracer(retention="ring", window=WINDOW) if (
            mode == "streaming-audit"
        ) else Tracer()
    cluster = build_keyspace(spec, seed=SEED, tracer=tracer)
    auditor = None
    if mode == "streaming-audit":
        auditor = Auditor(cluster, mode="streaming", window=WINDOW)
    elif mode == "deep-audit":
        auditor = Auditor(cluster, mode="deep")
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        demo_mix(spec),
        ops_per_transaction=3,
        concurrency=4,
    )
    started = perf_counter()
    generator.run(transactions)
    seconds = perf_counter() - started
    operations = sum(generator.metrics.outcomes.values())
    row = {
        "mode": mode,
        "transactions": transactions,
        "operations": operations,
        "seconds": seconds,
        "ops_per_second": operations / seconds if seconds else float("inf"),
        "retained_spans": getattr(tracer, "retained_spans", 0),
        "peak_retained": getattr(tracer, "peak_retained", 0),
    }
    if auditor is not None:
        verdict = auditor.finish()
        assert verdict.ok, verdict.render()
        row["audit_ok"] = verdict.ok
        row["audit_operations"] = verdict.operations
    return row


def _soak_row(ops: int) -> dict:
    result = run_soak(
        SoakConfig(ops=ops, seed=SEED, window=WINDOW, compact_every=25)
    )
    assert result.retained_ok, result.to_dict()
    assert result.report is not None and result.report.ok, result.to_dict()
    return result.to_dict()


def _equivalence_rows() -> list[dict]:
    rows = []
    for case in EQUIVALENCE_CASES:
        outcome = streaming_matches_deep(**case)
        assert outcome["match"], outcome
        rows.append({"case": outcome["case"], "match": outcome["match"]})
    return rows


def _mutation_rows() -> list[dict]:
    """Every seeded mutation must be flagged under a tiny window."""
    rows = []
    for name in sorted(MUTATIONS):
        kwargs: dict = {"mutate": name, "window": TINY_WINDOW}
        if name == "shard-misroute":
            kwargs.update(objects=4, placement="ring", sites=5)
        outcome = streaming_matches_deep(**kwargs)
        expected = EXPECTED_INVARIANT[name]
        flagged = f'"{expected}"' in outcome["streaming"]
        assert flagged, (name, outcome["streaming"])
        rows.append(
            {
                "mutation": name,
                "expected_invariant": expected,
                "flagged": flagged,
                "match": outcome["match"],
            }
        )
    return rows


def _measure(transactions: int, soak_ops: int) -> dict:
    return {
        "seed": SEED,
        "sites": SITES,
        "objects": OBJECTS,
        "placement": PLACEMENT,
        "window": WINDOW,
        "overhead": [
            _overhead_case(mode, transactions)
            for mode in ("untraced", "ring", "streaming-audit", "deep-audit")
        ],
        "soak": _soak_row(soak_ops),
        "equivalence": _equivalence_rows(),
        "mutations": _mutation_rows(),
    }


def _render(results: dict) -> str:
    lines = [
        f"{'mode':<16} {'ops':>6} {'seconds':>8} {'ops/s':>9} "
        f"{'retained':>8} {'peak':>6}",
        "-" * 58,
    ]
    for row in results["overhead"]:
        lines.append(
            f"{row['mode']:<16} {row['operations']:>6} "
            f"{row['seconds']:>8.2f} {row['ops_per_second']:>9.0f} "
            f"{row['retained_spans']:>8} {row['peak_retained']:>6}"
        )
    soak = results["soak"]
    lines.append(
        f"soak: {soak['ops']:,} ops at {soak['ops_per_sec']:,.0f} ops/s — "
        f"peak {soak['peak_retained']} retained spans "
        f"(window {soak['config']['window']}), "
        f"{soak['live_txns']} live txns at end, "
        f"{soak['maintenance']['retired_txns']:,} retired"
    )
    lines.append(
        f"equivalence: {len(results['equivalence'])} tier-1 cases "
        "byte-identical deep vs streaming"
    )
    lines.append(
        f"mutations: {len(results['mutations'])} seeded sabotages flagged "
        f"under window {TINY_WINDOW}"
    )
    return "\n".join(lines)


def _check(results: dict) -> None:
    assert results["soak"]["retained_ok"], results["soak"]
    assert results["soak"]["ok"], results["soak"]
    for row in results["equivalence"]:
        assert row["match"], row
    for row in results["mutations"]:
        assert row["flagged"], row


def test_stream_audit(bench_cache_state):
    results = _measure(QUICK_TRANSACTIONS, QUICK_SOAK_OPS)
    emit_json(
        "stream_audit",
        results,
        cache_state=bench_cache_state,
        objects=OBJECTS,
        placement=PLACEMENT,
    )
    report("stream_audit", _render(results))
    _check(results)


def main(argv: list[str] | None = None) -> int:
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="25k-op soak instead of 1M"
    )
    args = parser.parse_args(argv)
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    transactions = QUICK_TRANSACTIONS if args.quick else TRANSACTIONS
    soak_ops = QUICK_SOAK_OPS if args.quick else SOAK_OPS
    results = _measure(transactions, soak_ops)
    emit_json(
        "stream_audit",
        results,
        cache_state="cold",
        objects=OBJECTS,
        placement=PLACEMENT,
    )
    report("stream_audit", _render(results))
    _check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
