"""Kernel performance: timed micro-benchmarks of the hot paths.

Unlike the figure benchmarks (single-shot regenerations), these use
pytest-benchmark's timed rounds to characterize the kernel itself:
legality replay through the memoized trie, atomicity-membership
checking, the Theorem 6 and Theorem 10 searches, and Definition-2
verification.  Useful for catching performance regressions in the
machinery every other experiment stands on.
"""

from repro.atomicity.explore import ExplorationBounds
from repro.atomicity.properties import HybridAtomicity, StaticAtomicity
from repro.dependency import known
from repro.dependency.dynamic_dep import minimal_dynamic_dependency
from repro.dependency.static_dep import minimal_static_dependency
from repro.dependency.verify import (
    VerificationArena,
    VerificationBounds,
    find_counterexample,
)
from repro.histories.behavioral import Begin, BehavioralHistory, Commit, Op
from repro.histories.events import event, ok
from repro.spec.enumerate import legal_serial_histories
from repro.spec.legality import LegalityOracle
from repro.types import Queue, Register


def test_legality_replay_cold(benchmark):
    """Replay a 12-event serial history against a fresh oracle."""
    queue = Queue()
    history = (
        event("Enq", ("a",)),
        event("Enq", ("b",)),
        event("Deq", (), ok("a")),
        event("Enq", ("a",)),
        event("Deq", (), ok("b")),
        event("Deq", (), ok("a")),
    ) * 2

    def replay():
        return LegalityOracle(queue).is_legal(history)

    assert benchmark(replay)


def test_legality_replay_memoized(benchmark):
    """The same replay against a warm trie (the searches' common case)."""
    queue = Queue()
    oracle = LegalityOracle(queue)
    history = (
        event("Enq", ("a",)),
        event("Enq", ("b",)),
        event("Deq", (), ok("a")),
        event("Deq", (), ok("b")),
    ) * 3
    oracle.is_legal(history)
    assert benchmark(lambda: oracle.is_legal(history))


def test_serial_history_enumeration(benchmark):
    queue = Queue()

    def enumerate_all():
        return sum(1 for _ in legal_serial_histories(queue, 4))

    count = benchmark(enumerate_all)
    assert count > 100


def test_hybrid_membership_check(benchmark):
    queue = Queue()
    oracle = LegalityOracle(queue)
    history = BehavioralHistory.build(
        Begin("A"),
        Begin("B"),
        Begin("C"),
        Op(event("Enq", ("a",)), "A"),
        Op(event("Enq", ("b",)), "B"),
        Commit("A"),
        Op(event("Deq", (), ok("a")), "C"),
        Commit("C"),
        Commit("B"),
    )

    def check():
        prop = HybridAtomicity(queue, oracle)  # fresh cache each round
        return prop.admits(history)

    assert benchmark(check)


def test_theorem6_search(benchmark):
    queue = Queue()

    def search():
        return minimal_static_dependency(queue, 3)

    relation = benchmark(search)
    assert len(relation) > 0


def test_theorem10_search(benchmark):
    queue = Queue()

    def search():
        return minimal_dynamic_dependency(queue, 3)

    relation = benchmark(search)
    assert len(relation) > 0


def test_definition2_verification(benchmark):
    register = Register(items=("x",))
    oracle = LegalityOracle(register)
    prop = StaticAtomicity(register, oracle)
    arena = VerificationArena(
        prop,
        VerificationBounds(ExplorationBounds(max_ops=2, max_actions=2)),
    )
    relation = minimal_static_dependency(register, 3, oracle)

    def verify():
        return find_counterexample(relation, arena)

    assert benchmark(verify) is None
