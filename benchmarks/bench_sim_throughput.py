"""Replication-runtime throughput: batched fan-out, slot queue, sharding.

Measurements over the replicated-queue workload, asserting the
throughput engine's core claims:

* **batched ≥ 2× ops/sec (simulated time)** — overlapping every quorum
  probe's round trip (``rpc_mode="batched"``) plus the incremental
  view-merge cache must push at least twice as many front-end
  operations through per simulated second as the serial reference path.
  Simulated time is the deterministic metric the paper's latency and
  availability results are stated in, so the floor is exact and
  machine-independent.
* **ops/wall-second ≥ 5× the PR-7 baseline** — the allocation-free
  simulator core (slot event queue, interned messages, incremental view
  and serial-prefix caches, wave-batched gather) must clear
  ``OPS_WALL_FLOOR`` = 5 × the 741.33 ops/wall-s this same workload
  recorded before the optimization.  Wall time is host-dependent, so
  the batched run is timed ``WALL_REPEATS`` times and the floor applies
  to the best sample; every sample is recorded, honestly, alongside.
  ``--quick`` (CI's smoke sizes) asserts the lenient
  ``QUICK_OPS_WALL_FLOOR`` calibrated for cold containers.
* **slot queue ≡ reference queue** — rerunning the batched workload on
  the pre-optimization dataclass-heap event queue
  (``queue_mode="reference"``) must produce a byte-identical
  fingerprint: the allocation-free core is a pure representation change.
* **trial sharding ≥ 2× trials/sec** — sharding a Monte Carlo seed
  sweep across ``--jobs`` worker processes must at least double
  trials/sec — asserted only when the host can actually run two
  processes at once (``available_cpus() >= 2``) and the pool really
  engaged; on a single-CPU container the numbers are still recorded,
  honestly, in ``benchmarks/results/BENCH_sim_throughput.json``.
  Aggregates must be byte-identical across jobs = 1, 2, and
  ``TRIAL_JOBS``.
* **≥ 4-CPU soak: near-linear sharding** — the full run adds a larger
  sweep (``SOAK_SEEDS`` seeds × ``SOAK_TRANSACTIONS`` transactions,
  sized so pool startup is noise) that must reach
  ``SOAK_SPEEDUP_FLOOR``× on hosts with at least ``TRIAL_JOBS`` CPUs.
  Fewer cores: recorded, not asserted.

All claims are *pure performance*: fingerprints must be byte-identical
across rpc modes, queue modes, and job counts — asserted here and
enforced more broadly by ``tests/test_sim_throughput.py``.

Standalone: ``python benchmarks/bench_sim_throughput.py [--quick]``
(CI's smoke job uses ``--quick``).
"""

from __future__ import annotations

from time import perf_counter

from conftest import emit_json, record_parallelism, report

from repro.dependency import known
from repro.replication.cluster import build_cluster
from repro.sim.trials import available_cpus, run_trials, seed_range
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.types import Queue

SITES = 5
TRANSACTIONS = 400
QUICK_TRANSACTIONS = 120
TRIAL_SEEDS = 8
QUICK_TRIAL_SEEDS = 4
TRIAL_TRANSACTIONS = 40
TRIAL_JOBS = 4
SOAK_SEEDS = 24
SOAK_TRANSACTIONS = 200
WALL_REPEATS = 3

OPS_SIM_SPEEDUP_FLOOR = 2.0
#: ops/wall-second this workload recorded before the allocation-free
#: core landed (PR 7's committed BENCH_sim_throughput.json).
PR7_OPS_WALL_BASELINE = 741.33
OPS_WALL_FLOOR = 5 * PR7_OPS_WALL_BASELINE
#: Calibrated for the trimmed --quick sizes on cold CI containers:
#: fixed per-run setup amortizes over 3.3x fewer transactions, and smoke
#: runners are slow, so the quick floor only catches gross regressions.
QUICK_OPS_WALL_FLOOR = 1200.0
TRIALS_SPEEDUP_FLOOR = 2.0
SOAK_SPEEDUP_FLOOR = 3.0

#: Host-speed calibration for the wall-clock floor.  Shared CI/container
#: hosts throttle in waves (a 2-3x swing on a fixed spin loop within one
#: session is routine), so a raw wall floor would flake on slow windows
#: while asserting nothing extra on fast ones.  The floor is instead
#: scaled by how much slower than the reference the host runs a fixed
#: pure-Python spin loop at measurement time: a genuine regression slows
#: the simulator *relative to* the spin loop and is still caught, while
#: host-wide throttling moves both equally and is factored out.  The
#: reference is the loop's time on the un-throttled host that produced
#: the committed numbers; faster hosts never raise the floor above 5x.
HOST_SPIN_LOOPS = 2_000_000
HOST_SPIN_REFERENCE = 0.032


def _host_speed() -> float:
    """Best-of-3 time for the fixed calibration spin loop, in seconds."""

    def spin() -> float:
        started = perf_counter()
        x = 0
        for i in range(HOST_SPIN_LOOPS):
            x += i
        return perf_counter() - started

    return min(spin() for _ in range(3))


def _queue_workload(
    mode: str,
    seed: int,
    transactions: int,
    n_sites: int,
    queue_mode: str = "slot",
):
    cluster = build_cluster(
        n_sites, seed=seed, rpc_mode=mode, queue_mode=queue_mode
    )
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    cluster.add_object("queue", queue, "hybrid", relation=relation)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        OperationMix.uniform("queue", queue.invocations()),
        ops_per_transaction=1,
        concurrency=4,
    )
    metrics = generator.run(transactions)
    return cluster, metrics


def _fingerprint(cluster, metrics) -> dict:
    """Everything that must not change between RPC modes, JSON-shaped."""
    return {
        "outcomes": sorted(
            [op, outcome, count]
            for (op, outcome), count in metrics.outcomes.items()
        ),
        "messages_sent": cluster.network.messages_sent,
        "messages_dropped": cluster.network.messages_dropped,
        "availability": {
            op: metrics.availability(op) for op in metrics.operations()
        },
    }


def _measure_ops(transactions: int, wall_floor: float) -> dict:
    """Serial vs batched throughput, slot vs reference event queue."""
    started = perf_counter()
    cluster, metrics = _queue_workload("serial", 0, transactions, SITES)
    serial_wall = perf_counter() - started
    attempts = sum(metrics.attempts(op) for op in metrics.operations())
    serial = {
        "wall_seconds": serial_wall,
        "sim_seconds": cluster.sim.now,
        "operations": attempts,
        "ops_per_sim_second": attempts / cluster.sim.now,
        "ops_per_wall_second": (
            attempts / serial_wall if serial_wall else float("inf")
        ),
        "fingerprint": _fingerprint(cluster, metrics),
    }

    # Wall time is host-load-dependent; the floor applies to the best of
    # WALL_REPEATS identical runs and every sample is recorded.
    samples = []
    for _ in range(WALL_REPEATS):
        started = perf_counter()
        cluster, metrics = _queue_workload("batched", 0, transactions, SITES)
        samples.append(perf_counter() - started)
    wall = min(samples)
    attempts = sum(metrics.attempts(op) for op in metrics.operations())
    batched = {
        "wall_seconds": wall,
        "wall_samples": samples,
        "sim_seconds": cluster.sim.now,
        "operations": attempts,
        "ops_per_sim_second": attempts / cluster.sim.now,
        "ops_per_wall_second": attempts / wall if wall else float("inf"),
        "fingerprint": _fingerprint(cluster, metrics),
        "view_cache": cluster.frontends[0].view_cache.stats(),
    }

    # The allocation-free slot queue is a pure representation change:
    # rerunning on the reference dataclass heap must not move a byte.
    started = perf_counter()
    ref_cluster, ref_metrics = _queue_workload(
        "batched", 0, transactions, SITES, queue_mode="reference"
    )
    reference_queue = {
        "wall_seconds": perf_counter() - started,
        "fingerprint": _fingerprint(ref_cluster, ref_metrics),
    }

    spin = _host_speed()
    floor_scale = max(1.0, spin / HOST_SPIN_REFERENCE)
    return {
        "transactions": transactions,
        "sites": SITES,
        "serial": serial,
        "batched": batched,
        "reference_queue": reference_queue,
        "ops_wall_floor": wall_floor,
        "ops_wall_floor_effective": wall_floor / floor_scale,
        "ops_wall_baseline": PR7_OPS_WALL_BASELINE,
        "host_spin_seconds": spin,
        "host_spin_reference": HOST_SPIN_REFERENCE,
        "host_floor_scale": floor_scale,
        "sim_speedup": (
            batched["ops_per_sim_second"] / serial["ops_per_sim_second"]
        ),
        "wall_speedup": (
            batched["ops_per_wall_second"] / serial["ops_per_wall_second"]
        ),
        "byte_identical_modes": (
            serial["fingerprint"] == batched["fingerprint"]
        ),
        "byte_identical_queues": (
            batched["fingerprint"] == reference_queue["fingerprint"]
        ),
    }


def _crash_trial(seed: int, transactions: int) -> tuple:
    """One Monte Carlo trial: a seeded queue workload with a mid-run crash.

    A pure function of its arguments, so it shards across worker
    processes with byte-identical results.
    """
    cluster = build_cluster(3, seed=seed, rpc_mode="batched")
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    cluster.add_object("queue", queue, "hybrid", relation=relation)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        OperationMix.uniform("queue", queue.invocations()),
        ops_per_transaction=1,
        concurrency=2,
    )
    generator.run(transactions // 2)
    cluster.network.crash(2)
    metrics = generator.run(transactions // 2)
    cluster.network.recover(2)
    return (
        tuple(
            (op, round(metrics.availability(op), 9))
            for op in metrics.operations()
        ),
        cluster.network.messages_sent,
        cluster.network.messages_dropped,
    )


def _availability_trial(seed: int) -> tuple:
    """Module-level (picklable) standard-size trial."""
    return _crash_trial(seed, TRIAL_TRANSACTIONS)


def _soak_trial(seed: int) -> tuple:
    """Module-level (picklable) soak-size trial."""
    return _crash_trial(seed, SOAK_TRANSACTIONS)


def _sweep(trial, seeds: list[int], jobs: int) -> tuple[list, bool, float]:
    """Time one ``run_trials`` sweep; returns (results, pool_used, wall)."""
    started = perf_counter()
    results, parallel_used = run_trials(trial, seeds, jobs=jobs)
    return results, parallel_used, perf_counter() - started


def _measure_trials(n_seeds: int) -> dict:
    """Sharded Monte Carlo sweeps: jobs 1 vs 2 vs TRIAL_JOBS, same seeds."""
    seeds = list(seed_range(0, n_seeds))
    one_job, _, one_job_seconds = _sweep(_availability_trial, seeds, 1)
    two_jobs, _, _ = _sweep(_availability_trial, seeds, 2)
    sharded, parallel_used, sharded_seconds = _sweep(
        _availability_trial, seeds, TRIAL_JOBS
    )
    return {
        "seeds": seeds,
        "trial_transactions": TRIAL_TRANSACTIONS,
        "one_job_seconds": one_job_seconds,
        "sharded_seconds": sharded_seconds,
        "trials_per_second_one_job": (
            len(seeds) / one_job_seconds if one_job_seconds else float("inf")
        ),
        "trials_per_second_sharded": (
            len(seeds) / sharded_seconds if sharded_seconds else float("inf")
        ),
        "trials_speedup": (
            one_job_seconds / sharded_seconds
            if sharded_seconds
            else float("inf")
        ),
        "jobs": TRIAL_JOBS,
        "parallel_used": parallel_used,
        "cpus": available_cpus(),
        "byte_identical_shards": one_job == sharded,
        "byte_identical_jobs2": one_job == two_jobs,
    }


def _measure_soak(n_seeds: int) -> dict:
    """The multicore soak: a sweep big enough that pool startup is noise."""
    seeds = list(seed_range(0, n_seeds))
    one_job, _, one_job_seconds = _sweep(_soak_trial, seeds, 1)
    sharded, parallel_used, sharded_seconds = _sweep(
        _soak_trial, seeds, TRIAL_JOBS
    )
    return {
        "seeds": n_seeds,
        "trial_transactions": SOAK_TRANSACTIONS,
        "one_job_seconds": one_job_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": (
            one_job_seconds / sharded_seconds
            if sharded_seconds
            else float("inf")
        ),
        "jobs": TRIAL_JOBS,
        "parallel_used": parallel_used,
        "cpus": available_cpus(),
        "byte_identical_shards": one_job == sharded,
    }


def _measure(
    transactions: int,
    n_seeds: int,
    wall_floor: float,
    *,
    soak: bool,
) -> dict:
    return {
        "ops": _measure_ops(transactions, wall_floor),
        "trials": _measure_trials(n_seeds),
        "soak": _measure_soak(SOAK_SEEDS) if soak else None,
    }


def _render(results: dict) -> str:
    ops, trials = results["ops"], results["trials"]
    samples = ", ".join(f"{s:.3f}" for s in ops["batched"]["wall_samples"])
    lines = [
        f"queue workload: {ops['transactions']} transactions, "
        f"{ops['sites']} sites, majority quorums",
        f"serial  rpc: {ops['serial']['ops_per_sim_second']:>8.3f} ops/sim-s  "
        f"({ops['serial']['wall_seconds']:.3f}s wall)",
        f"batched rpc: {ops['batched']['ops_per_sim_second']:>8.3f} ops/sim-s  "
        f"({ops['batched']['wall_seconds']:.3f}s wall, best of [{samples}])",
        f"throughput speedup: {ops['sim_speedup']:.2f}x simulated, "
        f"{ops['wall_speedup']:.2f}x wall-clock",
        f"ops/wall-s: {ops['batched']['ops_per_wall_second']:.2f} "
        + (
            f"(floor {ops['ops_wall_floor']:.2f} = "
            f"5x {ops['ops_wall_baseline']:.2f} baseline"
            if ops["ops_wall_floor"] == OPS_WALL_FLOOR
            else f"(quick floor {ops['ops_wall_floor']:.2f}"
        )
        + (
            f", scaled to {ops['ops_wall_floor_effective']:.2f} for a "
            f"{ops['host_floor_scale']:.2f}x-throttled host)"
            if ops["host_floor_scale"] > 1.0
            else ")"
        ),
        f"view cache: {ops['batched']['view_cache']}",
        f"modes byte-identical: {ops['byte_identical_modes']}",
        f"slot/reference queues byte-identical: "
        f"{ops['byte_identical_queues']}",
        f"trial sweep: {len(trials['seeds'])} seeds x "
        f"{trials['trial_transactions']} transactions",
        f"1 job:  {trials['trials_per_second_one_job']:>8.2f} trials/s",
        f"{trials['jobs']} jobs: {trials['trials_per_second_sharded']:>8.2f} "
        f"trials/s ({trials['trials_speedup']:.2f}x, "
        f"{'pool' if trials['parallel_used'] else 'serial fallback'}, "
        f"{trials['cpus']} cpu(s))",
        f"shards byte-identical: {trials['byte_identical_shards']} "
        f"(jobs=2: {trials['byte_identical_jobs2']})",
    ]
    soak = results["soak"]
    if soak is not None:
        lines.append(
            f"soak: {soak['seeds']} seeds x {soak['trial_transactions']} "
            f"transactions, {soak['speedup']:.2f}x over {soak['jobs']} jobs "
            f"({'pool' if soak['parallel_used'] else 'serial fallback'}, "
            f"{soak['cpus']} cpu(s), "
            f"byte-identical: {soak['byte_identical_shards']})"
        )
    return "\n".join(lines)


def _check(results: dict) -> None:
    ops, trials = results["ops"], results["trials"]
    assert ops["byte_identical_modes"], (
        "batched run diverged from the serial reference"
    )
    assert ops["byte_identical_queues"], (
        "slot event queue diverged from the reference heap"
    )
    assert ops["sim_speedup"] >= OPS_SIM_SPEEDUP_FLOOR, (
        f"batched throughput {ops['sim_speedup']:.2f}x below the "
        f"{OPS_SIM_SPEEDUP_FLOOR}x floor"
    )
    best = ops["batched"]["ops_per_wall_second"]
    assert best >= ops["ops_wall_floor_effective"], (
        f"batched throughput {best:.2f} ops/wall-s below the "
        f"{ops['ops_wall_floor_effective']:.2f} floor "
        f"({ops['ops_wall_floor']:.2f} scaled by host slowdown "
        f"{ops['host_floor_scale']:.2f}x; "
        f"samples: {ops['batched']['wall_samples']})"
    )
    assert trials["byte_identical_shards"], (
        "sharded sweep diverged from the one-job sweep"
    )
    assert trials["byte_identical_jobs2"], (
        "jobs=2 sweep diverged from the one-job sweep"
    )
    if trials["cpus"] >= 2 and trials["parallel_used"]:
        assert trials["trials_speedup"] >= TRIALS_SPEEDUP_FLOOR, (
            f"trial sharding {trials['trials_speedup']:.2f}x below the "
            f"{TRIALS_SPEEDUP_FLOOR}x floor on a {trials['cpus']}-cpu host"
        )
    soak = results["soak"]
    if soak is not None:
        assert soak["byte_identical_shards"], (
            "soak sweep diverged from its one-job sweep"
        )
        if soak["cpus"] >= soak["jobs"] and soak["parallel_used"]:
            assert soak["speedup"] >= SOAK_SPEEDUP_FLOOR, (
                f"soak sharding {soak['speedup']:.2f}x below the "
                f"{SOAK_SPEEDUP_FLOOR}x floor on a {soak['cpus']}-cpu host"
            )


def _emit(results: dict, cache_state: str) -> None:
    soak = results["soak"]
    engaged = results["trials"]["parallel_used"] or bool(
        soak is not None and soak["parallel_used"]
    )
    speedup = (
        soak["speedup"] if soak is not None else results["trials"]["trials_speedup"]
    )
    record_parallelism(engaged, speedup)
    emit_json("sim_throughput", results, cache_state=cache_state)
    report("sim_throughput", _render(results))
    _check(results)


def test_sim_throughput(bench_cache_state):
    results = _measure(TRANSACTIONS, TRIAL_SEEDS, OPS_WALL_FLOOR, soak=True)
    _emit(results, bench_cache_state)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the trimmed CI sizes"
    )
    args = parser.parse_args(argv)
    # A private cache keeps the standalone run hermetic.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    results = (
        _measure(
            QUICK_TRANSACTIONS,
            QUICK_TRIAL_SEEDS,
            QUICK_OPS_WALL_FLOOR,
            soak=False,
        )
        if args.quick
        else _measure(TRANSACTIONS, TRIAL_SEEDS, OPS_WALL_FLOOR, soak=True)
    )
    _emit(results, "cold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
