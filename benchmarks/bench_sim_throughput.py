"""Replication-runtime throughput: batched fan-out, view cache, sharding.

Two measurements over the replicated-queue workload, asserting the
throughput engine's core claims:

* **batched ≥ 2× ops/sec (simulated time)** — overlapping every quorum
  probe's round trip (``rpc_mode="batched"``) plus the incremental
  view-merge cache must push at least twice as many front-end
  operations through per simulated second as the serial reference path.
  Simulated time is the deterministic metric the paper's latency and
  availability results are stated in, so the floor is exact and
  machine-independent; wall-clock ops/sec for both modes is recorded
  alongside, honestly, but never asserted (it varies with host load).
* **trial sharding ≥ 2× trials/sec** — sharding a Monte Carlo seed
  sweep across ``--jobs`` worker processes must at least double
  trials/sec — asserted only when the host can actually run two
  processes at once (``available_cpus() >= 2``) and the pool really
  engaged; on a single-CPU container the numbers are still recorded,
  honestly, in ``benchmarks/results/BENCH_sim_throughput.json``.

Both claims are *pure performance*: the batched run's outcome counters,
message counters, and per-operation availability must be byte-identical
to the serial run's, and the sharded sweep's aggregate byte-identical
to the one-job sweep's — asserted here and enforced more broadly by
``tests/test_sim_throughput.py``.

Standalone: ``python benchmarks/bench_sim_throughput.py [--quick]``
(CI's smoke job uses ``--quick``).
"""

from __future__ import annotations

from time import perf_counter

from conftest import emit_json, report

from repro.dependency import known
from repro.replication.cluster import build_cluster
from repro.sim.trials import available_cpus, run_trials, seed_range
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.types import Queue

SITES = 5
TRANSACTIONS = 400
QUICK_TRANSACTIONS = 120
TRIAL_SEEDS = 6
QUICK_TRIAL_SEEDS = 4
TRIAL_TRANSACTIONS = 40
TRIAL_JOBS = 4

OPS_SIM_SPEEDUP_FLOOR = 2.0
TRIALS_SPEEDUP_FLOOR = 2.0


def _queue_workload(mode: str, seed: int, transactions: int, n_sites: int):
    cluster = build_cluster(n_sites, seed=seed, rpc_mode=mode)
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    cluster.add_object("queue", queue, "hybrid", relation=relation)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        OperationMix.uniform("queue", queue.invocations()),
        ops_per_transaction=1,
        concurrency=4,
    )
    metrics = generator.run(transactions)
    return cluster, metrics


def _fingerprint(cluster, metrics) -> dict:
    """Everything that must not change between RPC modes, JSON-shaped."""
    return {
        "outcomes": sorted(
            [op, outcome, count]
            for (op, outcome), count in metrics.outcomes.items()
        ),
        "messages_sent": cluster.network.messages_sent,
        "messages_dropped": cluster.network.messages_dropped,
        "availability": {
            op: metrics.availability(op) for op in metrics.operations()
        },
    }


def _measure_ops(transactions: int) -> dict:
    """Serial vs batched front-end throughput on the queue workload."""
    rows = {}
    for mode in ("serial", "batched"):
        started = perf_counter()
        cluster, metrics = _queue_workload(mode, 0, transactions, SITES)
        wall = perf_counter() - started
        attempts = sum(metrics.attempts(op) for op in metrics.operations())
        rows[mode] = {
            "wall_seconds": wall,
            "sim_seconds": cluster.sim.now,
            "operations": attempts,
            "ops_per_sim_second": attempts / cluster.sim.now,
            "ops_per_wall_second": attempts / wall if wall else float("inf"),
            "fingerprint": _fingerprint(cluster, metrics),
        }
        if mode == "batched":
            rows[mode]["view_cache"] = cluster.frontends[0].view_cache.stats()
    serial, batched = rows["serial"], rows["batched"]
    return {
        "transactions": transactions,
        "sites": SITES,
        "serial": serial,
        "batched": batched,
        "sim_speedup": (
            batched["ops_per_sim_second"] / serial["ops_per_sim_second"]
        ),
        "wall_speedup": (
            batched["ops_per_wall_second"] / serial["ops_per_wall_second"]
        ),
        "byte_identical_modes": (
            serial["fingerprint"] == batched["fingerprint"]
        ),
    }


def _availability_trial(seed: int) -> tuple:
    """One Monte Carlo trial: a seeded queue workload with a mid-run crash.

    Module-level (picklable) and a pure function of its seed, so it
    shards across worker processes with byte-identical results.
    """
    cluster = build_cluster(3, seed=seed, rpc_mode="batched")
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    cluster.add_object("queue", queue, "hybrid", relation=relation)
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        OperationMix.uniform("queue", queue.invocations()),
        ops_per_transaction=1,
        concurrency=2,
    )
    generator.run(TRIAL_TRANSACTIONS // 2)
    cluster.network.crash(2)
    metrics = generator.run(TRIAL_TRANSACTIONS // 2)
    cluster.network.recover(2)
    return (
        tuple(
            (op, round(metrics.availability(op), 9))
            for op in metrics.operations()
        ),
        cluster.network.messages_sent,
        cluster.network.messages_dropped,
    )


def _measure_trials(n_seeds: int) -> dict:
    """One-job vs sharded Monte Carlo sweep over the same seeds."""
    seeds = list(seed_range(0, n_seeds))
    started = perf_counter()
    one_job, _ = run_trials(_availability_trial, seeds, jobs=1)
    one_job_seconds = perf_counter() - started
    started = perf_counter()
    sharded, parallel_used = run_trials(
        _availability_trial, seeds, jobs=TRIAL_JOBS
    )
    sharded_seconds = perf_counter() - started
    return {
        "seeds": seeds,
        "trial_transactions": TRIAL_TRANSACTIONS,
        "one_job_seconds": one_job_seconds,
        "sharded_seconds": sharded_seconds,
        "trials_per_second_one_job": (
            len(seeds) / one_job_seconds if one_job_seconds else float("inf")
        ),
        "trials_per_second_sharded": (
            len(seeds) / sharded_seconds if sharded_seconds else float("inf")
        ),
        "trials_speedup": (
            one_job_seconds / sharded_seconds
            if sharded_seconds
            else float("inf")
        ),
        "jobs": TRIAL_JOBS,
        "parallel_used": parallel_used,
        "cpus": available_cpus(),
        "byte_identical_shards": one_job == sharded,
    }


def _measure(transactions: int, n_seeds: int) -> dict:
    return {
        "ops": _measure_ops(transactions),
        "trials": _measure_trials(n_seeds),
    }


def _render(results: dict) -> str:
    ops, trials = results["ops"], results["trials"]
    lines = [
        f"queue workload: {ops['transactions']} transactions, "
        f"{ops['sites']} sites, majority quorums",
        f"serial  rpc: {ops['serial']['ops_per_sim_second']:>8.3f} ops/sim-s  "
        f"({ops['serial']['wall_seconds']:.3f}s wall)",
        f"batched rpc: {ops['batched']['ops_per_sim_second']:>8.3f} ops/sim-s  "
        f"({ops['batched']['wall_seconds']:.3f}s wall)",
        f"throughput speedup: {ops['sim_speedup']:.2f}x simulated, "
        f"{ops['wall_speedup']:.2f}x wall-clock",
        f"view cache: {ops['batched']['view_cache']}",
        f"modes byte-identical: {ops['byte_identical_modes']}",
        f"trial sweep: {len(trials['seeds'])} seeds x "
        f"{trials['trial_transactions']} transactions",
        f"1 job:  {trials['trials_per_second_one_job']:>8.2f} trials/s",
        f"{trials['jobs']} jobs: {trials['trials_per_second_sharded']:>8.2f} "
        f"trials/s ({trials['trials_speedup']:.2f}x, "
        f"{'pool' if trials['parallel_used'] else 'serial fallback'}, "
        f"{trials['cpus']} cpu(s))",
        f"shards byte-identical: {trials['byte_identical_shards']}",
    ]
    return "\n".join(lines)


def _check(results: dict) -> None:
    ops, trials = results["ops"], results["trials"]
    assert ops["byte_identical_modes"], (
        "batched run diverged from the serial reference"
    )
    assert ops["sim_speedup"] >= OPS_SIM_SPEEDUP_FLOOR, (
        f"batched throughput {ops['sim_speedup']:.2f}x below the "
        f"{OPS_SIM_SPEEDUP_FLOOR}x floor"
    )
    assert trials["byte_identical_shards"], (
        "sharded sweep diverged from the one-job sweep"
    )
    if trials["cpus"] >= 2 and trials["parallel_used"]:
        assert trials["trials_speedup"] >= TRIALS_SPEEDUP_FLOOR, (
            f"trial sharding {trials['trials_speedup']:.2f}x below the "
            f"{TRIALS_SPEEDUP_FLOOR}x floor on a {trials['cpus']}-cpu host"
        )


def test_sim_throughput(bench_cache_state):
    results = _measure(TRANSACTIONS, TRIAL_SEEDS)
    emit_json("sim_throughput", results, cache_state=bench_cache_state)
    report("sim_throughput", _render(results))
    _check(results)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the trimmed CI sizes"
    )
    args = parser.parse_args(argv)
    # A private cache keeps the standalone run hermetic.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    results = (
        _measure(QUICK_TRANSACTIONS, QUICK_TRIAL_SEEDS)
        if args.quick
        else _measure(TRANSACTIONS, TRIAL_SEEDS)
    )
    emit_json("sim_throughput", results, cache_state="cold")
    report("sim_throughput", _render(results))
    _check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
