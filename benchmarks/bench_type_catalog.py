"""The dependency catalog across the type library.

Beyond the paper's four example types, the kernel computes minimal
static and dynamic dependency relations for every type in the library
and orders them by *coupling* — what fraction of invocation/event pairs
must intersect.  The benchmark asserts the structural facts the theory
predicts:

* the **Sequencer** and **Mutex** are maximally coupled under locking
  (no two normal operations commute);
* the **SemiQueue** is strictly less coupled than the FIFO **Queue**
  under strong dynamic atomicity — the classic result that weakening
  the serial specification weakens the replication constraints
  (successful dequeues of distinct items commute once *any* item may be
  returned);
* commuting mutators (Counter Inc, Bag Insert) never self-couple.
"""

from conftest import report

from repro.core.catalog import catalog_entry, catalog_table
from repro.histories.events import Invocation, event, ok
from repro.types import (
    Bag,
    Counter,
    DoubleBuffer,
    Mutex,
    PROM,
    Queue,
    Register,
    SemiQueue,
    Sequencer,
    Stack,
)


def test_type_catalog(benchmark):
    types = (
        Queue(),
        SemiQueue(),
        Stack(),
        PROM(),
        DoubleBuffer(),
        Register(),
        Counter(),
        Bag(),
        Mutex(),
        Sequencer(),
    )

    def compute():
        return [catalog_entry(datatype, bound=3) for datatype in types]

    entries = benchmark.pedantic(compute, rounds=1, iterations=1)
    by_name = {entry.datatype: entry for entry in entries}

    # SemiQueue strictly weaker than Queue under dynamic atomicity: once
    # Deq may return *any* item, enqueue order stops mattering, so the
    # Enq/Enq pairs disappear (while same-item Deq pairs remain — two
    # dequeues still cannot both consume the same single item).
    queue = by_name["Queue"]
    semiqueue = by_name["SemiQueue"]
    assert semiqueue.dynamic_coupling < queue.dynamic_coupling
    enq_a, enq_b = Invocation("Enq", ("a",)), event("Enq", ("b",))
    assert queue.dynamic.depends(enq_a, enq_b)
    assert not semiqueue.dynamic.depends(enq_a, enq_b)
    assert semiqueue.dynamic.depends(Invocation("Deq"), event("Deq", (), ok("a")))

    # Sequencer: every Next/Next pair reachable within the bound is
    # constrained (the alphabet's deepest ticket value is enabled only
    # at the search horizon, so it is excluded from the check).
    sequencer = by_name["Sequencer"]
    for ticket in (1, 2, 3, 4):
        assert sequencer.dynamic.depends(
            Invocation("Next"), event("Next", (), ok(ticket))
        )

    # Commuting mutators never self-couple dynamically.
    counter = by_name["Counter"]
    assert not counter.dynamic.depends(Invocation("Inc"), event("Inc"))
    bag = by_name["Bag"]
    assert not bag.dynamic.depends(
        Invocation("Insert", ("x",)), event("Insert", ("y",))
    )

    lines = [
        "Minimal dependency relations across the type library "
        "(serial bound 3; pairs are ground pairs over each type's alphabet):",
        "",
        catalog_table(entries),
        "",
        "Reading the table: low coupling = weak quorum-intersection",
        "constraints = high realizable availability.  SemiQueue < Queue is",
        "the specification-weakening result; Sequencer and Mutex sit at the",
        "fully-serial extreme.",
    ]
    report("type_catalog", "\n".join(lines))
