"""Adaptive quorum tuning: tuned vs static assignments under live mixes.

The paper proves quorum consensus admits a whole *spectrum* of legal
assignments per type (Thms 6/10); which point is cheapest depends on
the operation mix.  This benchmark measures the online tuner
(:mod:`repro.tuning`) against fixed assignments on an 8-object
keyspace — four hybrid FIFO queues and four hybrid PROMs, ring-placed
over 5 sites with replication factor 3 — across three workloads:

* **read-dominant** — PROM reads dominate; queues stay balanced;
* **write-heavy** — enqueue-heavy queues, sparse PROM reads;
* **phase-shifting** — the mix flips mid-run (enqueue-heavy to
  dequeue-heavy), so *no* static assignment can win both phases.

Static competitors are priced honestly: ``default`` is the majority
assignment every object starts with; ``read_opt`` / ``write_opt`` fix
each object at the cost model's winner for the nominal read-dominant /
write-heavy mix.  The tuned run starts from ``default`` and must
discover the mix online; its reconfiguration hand-over messages are
charged against it.

Asserted claims (the phase-shifting scenario):

* tuned messages/commit **strictly below every static**, and at least
  ``DEFAULT_SAVING_FLOOR`` (15%) below ``default``;
* tuned pooled p95 operation latency no worse than ``default``;
* an audited tuned run (all streaming monitors, including
  ``reconfig-epoch``) reports **zero violations** across the switches;
* tuned runs fingerprint **byte-identically** across serial/batched
  RPC modes, with identical switch schedules;
* with the tuner constructed but never driven, the run is
  byte-identical to a plain untuned run — observation is free.

Nothing here shards across processes, so ``--jobs`` cannot perturb
results; the environment stamp records the session's value regardless,
and the ``tuner`` field says which numbers include online
reconfiguration.

Standalone: ``python benchmarks/bench_quorum_tuning.py [--quick]``
(CI's tuning-smoke job uses ``--quick``).
"""

from __future__ import annotations

import pytest

from conftest import emit_json, record_tuner, report

from repro.dependency import known
from repro.histories.events import Invocation
from repro.obs.audit import Auditor
from repro.replication.cluster import build_keyspace
from repro.replication.keyspace import KeyspaceSpec, ObjectSpec, PlacementRule
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.tuning import TunerConfig, legal_candidates, score_candidates
from repro.types import PROM, Queue

pytestmark = pytest.mark.tuning

SITES = 5
REPLICATION_FACTOR = 3
QUEUES = 4
PROMS = 4
TRANSACTIONS = 240
QUICK_TRANSACTIONS = 144
OPS_PER_TRANSACTION = 3
CONCURRENCY = 4
P_UP = 0.9

#: Tuned messages/commit must sit at least this fraction below the
#: default (majority) static on the phase-shifting workload.
DEFAULT_SAVING_FLOOR = 0.15

#: Sized for phase detection: the 4-op window rotates fast enough that
#: a mid-run mix flip shows up within ~8 operations per object, and the
#: 10% hysteresis still blocks noise-driven churn on the skewed steady
#: mixes (the switch schedule is identical across run lengths here).
TUNING = TunerConfig(window=4, evaluate_every=2, min_samples=4, hysteresis=0.10)

QUEUE_NAMES = tuple(f"queue-{i}" for i in range(QUEUES))
PROM_NAMES = tuple(f"prom-{i}" for i in range(PROMS))


def _spec() -> KeyspaceSpec:
    queue, prom = Queue(), PROM()
    queue_relation = known.ground(queue, known.QUEUE_STATIC, 5)
    prom_relation = known.ground(prom, known.PROM_HYBRID, 5)
    rule = PlacementRule.ring(REPLICATION_FACTOR)
    specs = [
        ObjectSpec(name, queue, scheme="hybrid", placement=rule, relation=queue_relation)
        for name in QUEUE_NAMES
    ] + [
        ObjectSpec(name, prom, scheme="hybrid", placement=rule, relation=prom_relation)
        for name in PROM_NAMES
    ]
    return KeyspaceSpec(SITES, tuple(specs))


def _invocation(datatype, op: str) -> Invocation:
    return next(inv for inv in datatype.invocations() if inv.op == op)


def _mix(enq_weight: float, deq_weight: float, read_weight: float) -> OperationMix:
    """Weighted traffic over every object: queue Enq/Deq plus PROM Read."""
    queue, prom = Queue(), PROM()
    items = [
        (name, _invocation(queue, "Enq"), enq_weight) for name in QUEUE_NAMES
    ]
    items += [
        (name, _invocation(queue, "Deq"), deq_weight) for name in QUEUE_NAMES
    ]
    items += [
        (name, _invocation(prom, "Read"), read_weight) for name in PROM_NAMES
    ]
    return OperationMix.weighted(items)


#: (label, list of (mix, fraction-of-transactions)) per scenario.  The
#: PROMs are sealed during setup, so Read is their live operation; the
#: phase shift flips the queues from enqueue- to dequeue-heavy.
SCENARIOS = {
    "read_dominant": [(_mix(1.0, 3.0, 8.0), 1.0)],
    "write_heavy": [(_mix(8.0, 1.0, 1.0), 1.0)],
    "phase_shifting": [
        (_mix(8.0, 1.0, 4.0), 0.5),
        (_mix(1.0, 8.0, 4.0), 0.5),
    ],
}

#: Nominal per-object mixes pricing the read_opt / write_opt statics.
NOMINAL_WEIGHTS = {
    "read_opt": {
        **{name: {"Enq": 0.25, "Deq": 0.75} for name in QUEUE_NAMES},
        **{name: {"Read": 1.0} for name in PROM_NAMES},
    },
    "write_opt": {
        **{name: {"Enq": 8 / 9, "Deq": 1 / 9} for name in QUEUE_NAMES},
        **{name: {"Read": 1.0} for name in PROM_NAMES},
    },
}


def _build(seed: int = 0, rpc_mode: str = "batched", tracer=None):
    return build_keyspace(_spec(), seed=seed, rpc_mode=rpc_mode, tracer=tracer)


def _seal_proms(cluster) -> None:
    """Seal every PROM: a sealed PROM serves Ok reads, which is the
    steady state the read mixes exercise.  Setup, not measured traffic —
    callers snapshot the message counter afterwards (and in the audited
    run, sealing happens after the auditor binds so the captured history
    is complete)."""
    for name in PROM_NAMES:
        txn = cluster.tm.begin(0)
        cluster.frontends[0].execute(txn, name, _invocation(PROM(), "Seal"))
        cluster.tm.commit(txn)


def _apply_static(cluster, nominal: dict[str, dict[str, float]]) -> None:
    """Fix every object at the cost model's winner for its nominal mix."""
    for name in sorted(nominal):
        obj = cluster.tm.object(name)
        replicas = tuple(cluster.placement.replicas(name))
        candidates = legal_candidates(
            obj.cc.relation, replicas, SITES, obj.datatype.operations()
        )
        scored = score_candidates(candidates, nominal[name], p_up=P_UP)
        _best, assignment = scored[0]
        cluster.reconfigure(name, assignment)


def _run_scenario(cluster, scenario: str, transactions: int, tuner=None):
    """Drive the scenario's phases through one shared metric recorder."""
    from repro.sim.metrics import MetricRecorder

    metrics = MetricRecorder()
    consumed = 0
    for mix, fraction in SCENARIOS[scenario]:
        count = round(transactions * fraction)
        generator = WorkloadGenerator(
            cluster.sim,
            cluster.tm,
            cluster.frontends,
            mix,
            ops_per_transaction=OPS_PER_TRANSACTION,
            concurrency=CONCURRENCY,
            metrics=metrics,
        )
        if tuner is not None:
            offset = consumed
            generator.on_transaction_start = (
                lambda index, _o=offset: tuner.on_transaction_start(index + _o)
            )
        generator.run(count)
        consumed += count
    return metrics


def _pooled_p95(metrics) -> float:
    samples = sorted(
        latency
        for latencies in metrics.latencies.values()
        for latency in latencies
    )
    if not samples:
        return float("nan")
    return samples[min(len(samples) - 1, int(0.95 * (len(samples) - 1)))]


def _fingerprint(cluster, metrics) -> dict:
    """Everything that must not change between RPC modes, JSON-shaped."""
    return {
        "outcomes": sorted(
            [op, outcome, count]
            for (op, outcome), count in metrics.outcomes.items()
        ),
        "messages_sent": cluster.network.messages_sent,
        "messages_dropped": cluster.network.messages_dropped,
    }


def _measure_config(
    scenario: str,
    config: str,
    transactions: int,
    *,
    seed: int = 0,
    rpc_mode: str = "batched",
) -> dict:
    """One (scenario, assignment-config) cell of the comparison."""
    cluster = _build(seed=seed, rpc_mode=rpc_mode)
    _seal_proms(cluster)
    tuner = None
    if config in NOMINAL_WEIGHTS:
        _apply_static(cluster, NOMINAL_WEIGHTS[config])
    elif config == "tuned":
        tuner = cluster.enable_tuning(TUNING)
    # Setup (sealing, static reconfiguration) is not charged; the tuned
    # run's own online reconfigurations, after this point, are.
    setup_messages = cluster.network.messages_sent
    metrics = _run_scenario(cluster, scenario, transactions, tuner=tuner)
    messages = cluster.network.messages_sent - setup_messages
    commits = metrics.committed_transactions
    return {
        "messages": messages,
        "commits": commits,
        "messages_per_commit": messages / commits if commits else float("inf"),
        "p95_latency": _pooled_p95(metrics),
        "commit_rate": metrics.commit_rate(),
        "switches": list(tuner.switches) if tuner is not None else [],
        "fingerprint": _fingerprint(cluster, metrics),
    }


def _measure_determinism(transactions: int) -> dict:
    """Tuned runs across RPC modes; a passive tuner against no tuner."""
    by_mode = {}
    for mode in ("serial", "batched"):
        cluster = _build(rpc_mode=mode)
        _seal_proms(cluster)
        tuner = cluster.enable_tuning(TUNING)
        metrics = _run_scenario(cluster, "phase_shifting", transactions, tuner=tuner)
        by_mode[mode] = {
            "fingerprint": _fingerprint(cluster, metrics),
            "switches": list(tuner.switches),
        }

    baseline = _build()
    _seal_proms(baseline)
    base_metrics = _run_scenario(baseline, "phase_shifting", transactions)
    passive = _build()
    _seal_proms(passive)
    passive.enable_tuning(TUNING)  # observer installed, never driven
    passive_metrics = _run_scenario(passive, "phase_shifting", transactions)
    return {
        "byte_identical_modes": by_mode["serial"] == by_mode["batched"],
        "switches": by_mode["batched"]["switches"],
        "tuner_off_identical": (
            _fingerprint(baseline, base_metrics)
            == _fingerprint(passive, passive_metrics)
        ),
    }


def _measure_audit(transactions: int) -> dict:
    """The tuned phase-shifting run under the full streaming auditor."""
    from repro.obs.trace import Tracer

    tracer = Tracer()
    cluster = _build(tracer=tracer)
    auditor = Auditor(cluster)
    _seal_proms(cluster)  # after binding: the captured history is complete
    tuner = cluster.enable_tuning(TUNING)
    _run_scenario(cluster, "phase_shifting", transactions, tuner=tuner)
    audit = auditor.finish()
    return {
        "ok": audit.ok,
        "violations": len(audit.violations),
        "switches": len(tuner.switches),
        "monitors": list(audit.monitors),
    }


def _measure(transactions: int) -> dict:
    configs = ("default", "read_opt", "write_opt", "tuned")
    scenarios = {
        scenario: {
            config: _measure_config(scenario, config, transactions)
            for config in configs
        }
        for scenario in SCENARIOS
    }
    return {
        "sites": SITES,
        "replication_factor": REPLICATION_FACTOR,
        "objects": QUEUES + PROMS,
        "transactions": transactions,
        "tuning": {
            "window": TUNING.window,
            "evaluate_every": TUNING.evaluate_every,
            "hysteresis": TUNING.hysteresis,
            "min_samples": TUNING.min_samples,
            "p_up": TUNING.p_up,
        },
        "scenarios": scenarios,
        "determinism": _measure_determinism(transactions),
        "audit": _measure_audit(transactions),
        "default_saving_floor": DEFAULT_SAVING_FLOOR,
    }


def _render(results: dict) -> str:
    lines = [
        f"keyspace: {results['objects']} objects "
        f"({QUEUES} hybrid queues, {PROMS} hybrid PROMs), "
        f"{results['sites']} sites, ring rf={results['replication_factor']}",
        f"{results['transactions']} transactions per scenario, "
        f"{OPS_PER_TRANSACTION} ops each",
    ]
    for scenario, configs in results["scenarios"].items():
        lines.append(f"{scenario}:")
        for config, row in configs.items():
            switched = (
                f", {len(row['switches'])} switches" if row["switches"] else ""
            )
            lines.append(
                f"  {config:<9} {row['messages_per_commit']:>7.2f} msgs/commit  "
                f"p95 {row['p95_latency']:.1f}  "
                f"commit rate {row['commit_rate']:.2f}{switched}"
            )
    shifting = results["scenarios"]["phase_shifting"]
    best_static = min(
        shifting[c]["messages_per_commit"]
        for c in ("default", "read_opt", "write_opt")
    )
    saving = 1 - (
        shifting["tuned"]["messages_per_commit"]
        / shifting["default"]["messages_per_commit"]
    )
    det, audit = results["determinism"], results["audit"]
    lines += [
        f"phase-shifting: tuned {shifting['tuned']['messages_per_commit']:.2f} "
        f"vs best static {best_static:.2f}, "
        f"{saving:.1%} below default (floor {results['default_saving_floor']:.0%})",
        f"modes byte-identical: {det['byte_identical_modes']} "
        f"({len(det['switches'])} switches)",
        f"tuner-off byte-identical to baseline: {det['tuner_off_identical']}",
        f"audit: {'OK' if audit['ok'] else 'FAIL'} "
        f"({audit['violations']} violations across {audit['switches']} switches)",
    ]
    return "\n".join(lines)


def _check(results: dict) -> None:
    shifting = results["scenarios"]["phase_shifting"]
    tuned = shifting["tuned"]
    statics = ("default", "read_opt", "write_opt")
    assert tuned["switches"], "the tuner never reconfigured on the shifting mix"
    for config in statics:
        assert (
            tuned["messages_per_commit"] < shifting[config]["messages_per_commit"]
        ), (
            f"tuned {tuned['messages_per_commit']:.2f} msgs/commit does not "
            f"beat static {config} "
            f"({shifting[config]['messages_per_commit']:.2f})"
        )
    saving = 1 - (
        tuned["messages_per_commit"] / shifting["default"]["messages_per_commit"]
    )
    assert saving >= results["default_saving_floor"], (
        f"tuned saving {saving:.1%} below the "
        f"{results['default_saving_floor']:.0%} floor"
    )
    assert tuned["p95_latency"] <= shifting["default"]["p95_latency"], (
        f"tuned p95 {tuned['p95_latency']:.2f} worse than default "
        f"{shifting['default']['p95_latency']:.2f}"
    )
    det = results["determinism"]
    assert det["byte_identical_modes"], (
        "tuned runs diverged between serial and batched RPC"
    )
    assert det["tuner_off_identical"], (
        "a passive (never-driven) tuner perturbed the workload"
    )
    audit = results["audit"]
    assert audit["switches"], "the audited run never reconfigured"
    assert audit["ok"] and audit["violations"] == 0, (
        f"audited tuned run reported {audit['violations']} violations"
    )
    assert "reconfig-epoch" in audit["monitors"]


def _emit(results: dict, cache_state: str) -> None:
    record_tuner(True)
    emit_json(
        "quorum_tuning",
        results,
        cache_state=cache_state,
        objects=results["objects"],
        placement="ring",
    )
    report("quorum_tuning", _render(results))
    _check(results)


def test_quorum_tuning(bench_cache_state):
    results = _measure(TRANSACTIONS)
    _emit(results, bench_cache_state)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the trimmed CI sizes"
    )
    args = parser.parse_args(argv)
    # A private cache keeps the standalone run hermetic.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    results = _measure(QUICK_TRANSACTIONS if args.quick else TRANSACTIONS)
    _emit(results, "cold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
