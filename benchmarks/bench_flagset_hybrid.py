"""The FlagSet example (Section 4): two distinct minimal hybrid relations.

Regenerates the paper's demonstration that "the weakest set of
constraints sufficient to ensure hybrid atomicity is not necessarily
unique": the common core of dependencies fails Definition 2 by itself,
and extends to a hybrid dependency relation via either of

    Shift(3) ≥ Shift(1);Ok()      (direct quorum intersection), or
    Shift(2) ≥ Shift(1);Ok()      (transitive, through Shift(2)),

with neither extension contained in the other, and each extension's
alternative pair essential (removing it re-breaks Definition 2).  The
minimal-extension search rediscovers both completions automatically.

Bounded-minimality caveat, reported in the output: a handful of the
paper's core pairs have no refutation witness inside the search bound
(their witnesses need ≥ 5-operation histories — e.g. ``Shift(n) ≥
Close();Ok(True)`` requires the full Open/Shift1/Shift2/Shift3/Close
chain), so strict ground-level minimality is asserted only for the
distinguishing pairs.
"""

from conftest import report

from repro.atomicity.explore import ExplorationBounds
from repro.atomicity.properties import HybridAtomicity
from repro.dependency import known
from repro.dependency.verify import (
    VerificationArena,
    VerificationBounds,
    find_counterexample,
    minimal_extensions,
)
from repro.histories.events import event, ok, signal
from repro.spec.legality import LegalityOracle
from repro.types import FlagSet

NORMAL_EVENTS = (
    event("Open"),
    event("Shift", (1,)),
    event("Shift", (2,)),
    event("Shift", (3,)),
    event("Close", (), ok(False)),
    event("Close", (), ok(True)),
)
#: Appended operations also range over exceptional responses — several
#: core pairs are only refutable by a wrongly-Disabled (or wrongly-Ok)
#: response chosen from a deficient view.
APPEND_EVENTS = NORMAL_EVENTS + (
    event("Open", (), signal("Disabled")),
    event("Shift", (1,), signal("Disabled")),
    event("Shift", (2,), signal("Disabled")),
    event("Shift", (3,), signal("Disabled")),
)


def _arena():
    flagset = FlagSet()
    oracle = LegalityOracle(flagset)
    return VerificationArena(
        HybridAtomicity(flagset, oracle),
        VerificationBounds(
            ExplorationBounds(max_ops=4, max_actions=2, events=NORMAL_EVENTS),
            append_events=APPEND_EVENTS,
        ),
    )


def test_flagset_two_minimal_hybrid_relations(benchmark):
    arena = benchmark.pedantic(_arena, rounds=1, iterations=1)
    flagset = FlagSet()
    core = known.ground(flagset, known.FLAGSET_CORE, events=APPEND_EVENTS)
    rel_a = known.ground(flagset, known.FLAGSET_HYBRID_A, events=APPEND_EVENTS)
    rel_b = known.ground(flagset, known.FLAGSET_HYBRID_B, events=APPEND_EVENTS)

    # 1. The core alone is not a hybrid dependency relation.
    core_counterexample = find_counterexample(core, arena)
    assert core_counterexample is not None

    # 2. Either single-pair completion is; the completions are distinct
    #    and incomparable; each alternative pair is essential.
    assert find_counterexample(rel_a, arena) is None
    assert find_counterexample(rel_b, arena) is None
    assert not rel_a <= rel_b and not rel_b <= rel_a
    assert len(rel_a.difference(core)) == 1 and len(rel_b.difference(core)) == 1

    # 3. The search over single Shift-pair additions rediscovers both
    #    (and only) completions.
    shift_pairs = [
        (inv, ev)
        for inv in arena.invocations
        for ev in arena.append_events
        if inv.op == "Shift" and ev.inv.op == "Shift" and ev.is_normal
    ]
    found = [
        extension
        for extension in minimal_extensions(core, shift_pairs, arena, max_added=1)
        if len(extension.difference(core)) == 1
    ]
    assert rel_a in found and rel_b in found

    # 4. Bounded-minimality caveat: which pairs lack a witness in-bounds.
    unwitnessed = [
        pair
        for pair in sorted(rel_a.pairs, key=lambda p: (str(p[0]), str(p[1])))
        if find_counterexample(rel_a.without(pair), arena) is None
    ]

    lines = [
        "FlagSet: the minimal hybrid dependency relation is not unique.",
        "",
        "Common core (the paper's list):",
        "\n".join(f"  {schema}" for schema in core.schema_pairs()),
        "",
        "core alone fails Definition 2; counterexample found:",
        core_counterexample.explain(),
        "",
        "valid single-pair completions found by search "
        f"({len(found)} of them):",
        f"  core + {known.FLAGSET_ALTERNATIVE_DIRECT}",
        f"  core + {known.FLAGSET_ALTERNATIVE_TRANSITIVE}",
        "neither completion is contained in the other.",
        "",
        "bounded-minimality caveat — core pairs with no refutation witness",
        "within ≤4-operation histories (their witnesses need longer chains):",
        "\n".join(f"  {inv} ≥ {ev}" for inv, ev in unwitnessed),
    ]
    report("flagset_two_minimals", "\n".join(lines))
