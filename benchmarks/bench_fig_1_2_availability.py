"""Figure 1-2 — the availability (quorum-constraint) relations.

Regenerates the paper's second lattice: the machine-checked theorem
battery (Theorems 4, 5, 6, 10, 11, 12 and the FlagSet example) plus the
dependency-relation comparison for the Queue, rendered as the paper's
figure.  The paper's claims:

* any quorum assignment supporting full static atomicity supports full
  hybrid atomicity, not vice versa;
* strong dynamic constraints are incomparable to both.
"""

from conftest import report

from repro.core.compare import compare_dependencies
from repro.core.report import figure_1_2
from repro.core.theorems import verify_all_theorems
from repro.dependency import known
from repro.types import Queue


def test_fig_1_2_theorem_battery(benchmark):
    results = benchmark.pedantic(verify_all_theorems, rounds=1, iterations=1)
    assert all(result.holds for result in results)
    report(
        "fig_1_2_theorems",
        "\n\n".join(result.summary() for result in results),
    )


def test_fig_1_2_dependency_lattice(benchmark):
    queue = Queue()
    hybrid = known.ground(queue, known.QUEUE_STATIC, 5)  # hybrid-valid by Thm 4

    def compare():
        return compare_dependencies(queue, bound=4, hybrid=hybrid)

    comparison = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert comparison.static_contains_hybrid()
    assert comparison.static_dynamic_incomparable()
    assert comparison.hybrid_dynamic_incomparable()
    report("fig_1_2_availability", figure_1_2(comparison))
