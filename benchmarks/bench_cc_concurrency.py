"""End-to-end concurrency: the three schemes on identical workloads.

Figure 1-1's concurrency ordering, measured: the same seeded workload is
driven through the replicated Queue under each concurrency-control
scheme, and the per-operation conflict rates and transaction commit
rates are compared.  Expected shape:

* concurrent enqueues of distinct items conflict under commutativity
  locking (they do not commute) but not under hybrid atomicity (any
  commit order serializes them) — so the hybrid Enq conflict rate is
  strictly lower than the locking one;
* every scheme's histories satisfy its own atomicity property (checked
  in the integration tests; here we check everything terminates and
  report the rates).
"""

from conftest import report

from repro.dependency import known
from repro.obs.metrics import Histogram
from repro.replication.cluster import build_cluster
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.types import Counter, Queue


def _run(scheme: str, datatype, relation, seeds, transactions=60):
    """Pool metrics over several seeds for one scheme."""
    pooled = []
    for seed in seeds:
        cluster = build_cluster(3, seed=seed)
        obj = cluster.add_object("obj", datatype, scheme, relation=relation)
        mix = OperationMix.uniform("obj", datatype.invocations())
        generator = WorkloadGenerator(
            cluster.sim,
            cluster.tm,
            cluster.frontends,
            mix,
            ops_per_transaction=3,
            concurrency=4,
        )
        pooled.append(generator.run(transactions))
    return pooled


def _pooled_rate(runs, op, outcome):
    attempts = sum(m.attempts(op) for m in runs)
    hits = sum(m.count(op, outcome) for m in runs)
    return hits / attempts if attempts else float("nan")


def _pooled_commit_rate(runs):
    commits = sum(m.committed_transactions for m in runs)
    aborts = sum(m.aborted_transactions for m in runs)
    return commits / (commits + aborts)


def _pooled_latency(runs, ops):
    """All operations' latency samples pooled into one histogram."""
    merged = Histogram()
    for metrics in runs:
        for op in ops:
            merged.merge(metrics.latency_histogram(op))
    return merged


def test_cc_concurrency_queue(benchmark):
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    seeds = (1, 2, 3, 4)

    def run_all():
        return {
            scheme: _run(scheme, Queue(), relation, seeds)
            for scheme in ("hybrid", "static", "dynamic")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Replicated Queue, 3 sites, uniform Enq/Deq mix, 4-way concurrency,",
        f"{len(seeds)} seeds × 60 transactions per scheme:",
        "",
        f"{'scheme':<9} {'commit%':>8} {'Enq conflict%':>14} {'Deq conflict%':>14}"
        f" {'lat p50':>8} {'lat p95':>8} {'lat p99':>8}",
    ]
    rates = {}
    for scheme, runs in results.items():
        commit = _pooled_commit_rate(runs)
        enq = _pooled_rate(runs, "Enq", "conflict")
        deq = _pooled_rate(runs, "Deq", "conflict")
        rates[scheme] = (commit, enq, deq)
        latency = _pooled_latency(runs, ("Enq", "Deq"))
        assert latency.count > 0  # the workload feeds the histograms
        lines.append(
            f"{scheme:<9} {100 * commit:>7.1f}% {100 * enq:>13.1f}% "
            f"{100 * deq:>13.1f}%"
            f" {latency.p50:>8.2f} {latency.p95:>8.2f} {latency.p99:>8.2f}"
        )

    # Hybrid permits concurrent distinct enqueues; locking must conflict.
    assert rates["hybrid"][1] < rates["dynamic"][1]
    report("cc_concurrency_queue", "\n".join(lines))


def test_cc_concurrency_counter(benchmark):
    from repro.dependency.static_dep import minimal_static_dependency

    counter = Counter()
    # The static relation is a valid hybrid relation too (Theorem 4).
    relation = minimal_static_dependency(counter, 3)
    seeds = (1, 2, 3)

    def run_all():
        return {
            scheme: _run(scheme, Counter(), relation, seeds)
            for scheme in ("hybrid", "static", "dynamic")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Replicated Counter, 3 sites, uniform Inc/Dec/Read mix:",
        "",
        f"{'scheme':<9} {'commit%':>8} {'Inc conflict%':>14} "
        f"{'Read conflict%':>15}",
    ]
    for scheme, runs in results.items():
        lines.append(
            f"{scheme:<9} {100 * _pooled_commit_rate(runs):>7.1f}% "
            f"{100 * _pooled_rate(runs, 'Inc', 'conflict'):>13.1f}% "
            f"{100 * _pooled_rate(runs, 'Read', 'conflict'):>14.1f}%"
        )
        commits = sum(m.committed_transactions for m in runs)
        assert commits > 0
    report("cc_concurrency_counter", "\n".join(lines))
