"""End-to-end availability: the PROM example measured on the simulator.

The paper's availability claims are analytic; this benchmark closes the
loop by *running* the replicated PROM under stochastic site crashes and
measuring per-operation availability, for the availability-optimal
quorum assignments permitted by hybrid vs static atomicity (Read pinned
to a single site, as in the Section 4 example).  Expected shape:

* measured availability tracks the exact analytic figure for every
  operation under both assignments;
* Write availability under the hybrid assignment (1-site quorums)
  dominates the static assignment (n-site quorums) by a large factor.
"""

from functools import partial

from conftest import report

from repro.dependency import known
from repro.histories.events import Invocation
from repro.obs.metrics import Histogram
from repro.quorum.availability import operation_availability
from repro.quorum.batch import operation_availability_many
from repro.quorum.search import valid_threshold_choices
from repro.replication.cluster import build_cluster
from repro.sim.failures import CrashInjector
from repro.sim.trials import run_trials, seed_range
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.types import PROM

OPS = ("Read", "Seal", "Write")
N_SITES = 5
MEAN_UPTIME, MEAN_DOWNTIME = 90.0, 10.0
P_UP = MEAN_UPTIME / (MEAN_UPTIME + MEAN_DOWNTIME)
#: Monte Carlo seeds; results come back in seed order, so the pooled
#: statistics are identical whether the sweep ran serially or sharded
#: across ``--jobs`` processes.
SEEDS = seed_range(1, 3)


def _read_maximal_choice(relation):
    """The valid threshold choice with 1-site Reads and smallest Writes."""
    best = None
    for choice in valid_threshold_choices(relation, N_SITES, OPS):
        if choice.initial_of("Read") != 1:
            continue
        write_size = max(choice.initial_of("Write"), choice.final_of("Write"))
        seal_size = max(choice.initial_of("Seal"), choice.final_of("Seal"))
        key = (write_size, seal_size)
        if best is None or key < best[0]:
            best = (key, choice)
    assert best is not None
    return best[1]


def _measure(choice, seed):
    # Message latency small relative to failure timescales, so that an
    # operation samples an effectively instantaneous cluster state (the
    # analytic availability model's assumption).  The serial RPC path
    # probes sites one round trip at a time, so latency grows with
    # quorum size — the effect the tail comparison below is about (the
    # batched path overlaps probes and flattens that tail by design).
    cluster = build_cluster(N_SITES, seed=seed, latency=0.2, rpc_mode="serial")
    prom = PROM()
    relation = known.ground(prom, known.PROM_HYBRID, 5)
    cluster.add_object(
        "prom", prom, "hybrid", assignment=choice.to_assignment(), relation=relation
    )
    CrashInjector(cluster.network, MEAN_UPTIME, MEAN_DOWNTIME).install()
    mix = OperationMix.weighted(
        [
            ("prom", Invocation("Write", ("x",)), 5.0),
            ("prom", Invocation("Write", ("y",)), 5.0),
            ("prom", Invocation("Read"), 10.0),
        ]
    )
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        mix,
        ops_per_transaction=1,
        concurrency=2,
        think_time=1.0,
    )
    return generator.run(600)


def test_prom_availability_measured_vs_analytic(benchmark, bench_jobs):
    prom = PROM()
    hybrid_rel = known.ground(prom, known.PROM_HYBRID, 5)
    static_rel = known.ground(prom, known.PROM_STATIC, 5)
    hybrid_choice = _read_maximal_choice(hybrid_rel)
    static_choice = _read_maximal_choice(static_rel)

    def run_both():
        # Each trial is a pure function of its seed, so the seed list
        # shards across processes (--jobs / REPRO_JOBS) with the pooled
        # aggregates unchanged.
        hybrid_runs, _ = run_trials(
            partial(_measure, hybrid_choice), SEEDS, jobs=bench_jobs
        )
        static_runs, _ = run_trials(
            partial(_measure, static_choice), SEEDS, jobs=bench_jobs
        )
        return hybrid_runs, static_runs

    hybrid_runs, static_runs = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def pooled_availability(runs, op):
        attempts = sum(m.attempts(op) for m in runs)
        unavailable = sum(m.count(op, "unavailable") for m in runs)
        return 1.0 - unavailable / attempts if attempts else float("nan")

    def pooled_latency(runs, op):
        merged = Histogram(op)
        for metrics in runs:
            merged.merge(metrics.latency_histogram(op))
        return merged

    # Analytic figures come from the batched evaluator (one shared tail
    # vector per assignment); the inline asserts pin them bit-for-bit
    # to the scalar reference.
    analytic_hybrid = operation_availability_many(
        hybrid_choice.to_assignment(), ("Read", "Write"), P_UP
    )
    analytic_static = operation_availability_many(
        static_choice.to_assignment(), ("Read", "Write"), P_UP
    )

    lines = [
        f"PROM, n = {N_SITES}, per-site availability p = {P_UP:.2f} "
        f"(uptime {MEAN_UPTIME}, downtime {MEAN_DOWNTIME}), Read pinned to 1 site",
        "",
        f"hybrid assignment: {hybrid_choice.describe()}",
        f"static assignment: {static_choice.describe()}",
        "",
        f"{'operation':<10} {'analytic':>9} {'measured':>9}   (hybrid)"
        f"   {'analytic':>9} {'measured':>9}   (static)",
    ]
    for op in ("Read", "Write"):
        analytic_h = analytic_hybrid[op]
        analytic_s = analytic_static[op]
        assert analytic_h == operation_availability(
            hybrid_choice.to_assignment(), op, P_UP
        )
        assert analytic_s == operation_availability(
            static_choice.to_assignment(), op, P_UP
        )
        measured_h = pooled_availability(hybrid_runs, op)
        measured_s = pooled_availability(static_runs, op)
        lines.append(
            f"{op:<10} {analytic_h:>9.4f} {measured_h:>9.4f}            "
            f"{analytic_s:>9.4f} {measured_s:>9.4f}"
        )
        assert abs(measured_h - analytic_h) < 0.08
        assert abs(measured_s - analytic_s) < 0.08

    lines.append("")
    lines.append(
        f"{'operation':<10} {'p50':>7} {'p95':>7} {'p99':>7}   (hybrid)"
        f"   {'p50':>7} {'p95':>7} {'p99':>7}   (static)"
    )
    for op in ("Read", "Write"):
        hist_h = pooled_latency(hybrid_runs, op)
        hist_s = pooled_latency(static_runs, op)
        lines.append(
            f"{op:<10} {hist_h.p50:>7.2f} {hist_h.p95:>7.2f} {hist_h.p99:>7.2f}"
            f"            {hist_s.p50:>7.2f} {hist_s.p95:>7.2f} {hist_s.p99:>7.2f}"
        )
        # Larger write quorums mean more probes per operation: the
        # static assignment's Write tail must dominate the hybrid one's
        # (Reads are pinned to one site under both and stay comparable).
        if op == "Write":
            assert hist_s.p99 >= hist_h.p99

    hybrid_write = pooled_availability(hybrid_runs, "Write")
    static_write = pooled_availability(static_runs, "Write")
    unavailability_ratio = (1 - static_write) / max(1e-9, 1 - hybrid_write)
    lines.append("")
    lines.append(
        f"Write unavailability ratio static/hybrid: {unavailability_ratio:.1f}×"
    )
    assert hybrid_write > static_write
    assert unavailability_ratio > 3.0
    report("replication_availability", "\n".join(lines))
