"""Auditor overhead: throughput with and without the online auditor.

Three configurations of the same seeded workload:

* ``off``     — NullTracer, no auditor (the production default);
* ``traced``  — a real Tracer recording spans, no auditor;
* ``audited`` — the same Tracer with the :class:`~repro.obs.audit.Auditor`
  attached as a live listener, all six invariant monitors on.

The auditor's own cost is ``audited`` vs ``traced`` (it rides an
existing tracer; you cannot audit an untraced run), and the budget is
≤ 25 % throughput loss.  ``audited`` vs ``off`` is also reported as the
total cost of turning on full correctness observability.  Wall times
are best-of-``ROUNDS`` to shed scheduler noise.

Results land in ``benchmarks/results/BENCH_audit_overhead.json``
(machine-readable) and ``audit_overhead.txt`` (the usual text block).
"""

from __future__ import annotations

from time import perf_counter

from conftest import emit_json, report

from repro.dependency import known
from repro.obs.audit import Auditor
from repro.obs.trace import Tracer
from repro.replication.cluster import build_cluster
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.types import Queue

SEED = 0
SITES = 3
TRANSACTIONS = 60
ROUNDS = 5


def _run_once(mode: str) -> tuple[float, int]:
    """One workload run; returns (wall seconds, operations executed)."""
    tracer = Tracer() if mode != "off" else None
    cluster = build_cluster(SITES, seed=SEED, tracer=tracer)
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    cluster.add_object("queue", queue, "hybrid", relation=relation)
    auditor = Auditor(cluster) if mode == "audited" else None
    mix = OperationMix.uniform("queue", queue.invocations())
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        mix,
        ops_per_transaction=3,
        concurrency=4,
    )
    started = perf_counter()
    metrics = generator.run(TRANSACTIONS)
    elapsed = perf_counter() - started
    if auditor is not None:
        audit = auditor.finish()
        assert audit.ok, audit.render()
    return elapsed, sum(metrics.outcomes.values())


def _measure_all(modes: tuple[str, ...]) -> dict[str, dict[str, float]]:
    """Best-of-``ROUNDS`` wall time per mode, rounds interleaved.

    Rounds run round-robin across the configurations rather than as one
    block per configuration, so a host slowdown wave degrades every
    configuration's samples from the same time window instead of
    inflating one side of the overhead ratio.
    """
    samples: dict[str, list[float]] = {mode: [] for mode in modes}
    operations: dict[str, int] = {}
    for _ in range(ROUNDS):
        for mode in modes:
            elapsed, operations[mode] = _run_once(mode)
            samples[mode].append(elapsed)
    results = {}
    for mode in modes:
        best = min(samples[mode])
        results[mode] = {
            "wall_seconds_best": best,
            "wall_seconds_all": samples[mode],
            "operations": operations[mode],
            "throughput_ops_per_s": operations[mode] / best,
        }
    return results


def test_audit_overhead_within_budget(bench_cache_state):
    results = _measure_all(("off", "traced", "audited"))

    def loss(base: str, probe: str) -> float:
        """Throughput loss of ``probe`` relative to ``base``, in percent."""
        return 100.0 * (
            1.0
            - results[probe]["throughput_ops_per_s"]
            / results[base]["throughput_ops_per_s"]
        )

    auditor_loss = loss("traced", "audited")
    total_loss = loss("off", "audited")
    tracer_loss = loss("off", "traced")

    payload = {
        "workload": {
            "seed": SEED,
            "sites": SITES,
            "transactions": TRANSACTIONS,
            "rounds": ROUNDS,
        },
        "configurations": results,
        "overhead_pct": {
            "auditor_vs_traced": auditor_loss,
            "tracer_vs_off": tracer_loss,
            "audited_vs_off": total_loss,
        },
        "budget_pct": 25.0,
    }
    emit_json("audit_overhead", payload, cache_state=bench_cache_state)

    lines = [
        f"{'config':<10} {'best wall':>10} {'ops':>6} {'throughput':>12}",
        "-" * 42,
    ]
    for mode, stats in results.items():
        lines.append(
            f"{mode:<10} {stats['wall_seconds_best']:>9.4f}s "
            f"{stats['operations']:>6} "
            f"{stats['throughput_ops_per_s']:>10,.0f}/s"
        )
    lines += [
        "",
        f"auditor overhead (audited vs traced): {auditor_loss:>6.1f}%",
        f"tracer overhead  (traced  vs off):    {tracer_loss:>6.1f}%",
        f"total overhead   (audited vs off):    {total_loss:>6.1f}%",
        f"budget: auditor overhead <= 25% — "
        f"{'MET' if auditor_loss <= 25.0 else 'EXCEEDED'}",
    ]
    report("audit_overhead", "\n".join(lines))

    # The budget from the issue: attaching the auditor to an
    # already-traced run must not cost more than a quarter of
    # throughput.  (Generous slack over the ~15% measured cost so a
    # noisy CI box does not flap the suite.)
    assert auditor_loss <= 25.0, (
        f"auditor overhead {auditor_loss:.1f}% exceeds the 25% budget"
    )
    # Identical work was done in every configuration.
    assert (
        results["off"]["operations"]
        == results["traced"]["operations"]
        == results["audited"]["operations"]
    )
