"""Ablation: typed quorum assignment vs read/write classification.

Section 2 of the paper argues that models capturing operations only as
reads or writes (Gifford's weighted voting, Bernstein–Goodman)
"unnecessarily restrict availability and concurrency".  This benchmark
quantifies that claim with threshold-assignment searches under

* the **typed** dependency relation (the kernel's), versus
* the **read/write** classification: every mutator is a Write, every
  observer a Read, with the classical constraints r + w > n and 2w > n.

Expected shape:

* **PROM** (the paper's own example) — under the typed hybrid relation,
  Write runs with single-site quorums; under the r/w classification
  writes need majorities, so a write-heavy workload loses availability;
* **Queue** — both Enq and Deq are read-modify-write, so the FIFO
  coupling leaves the r/w classification no worse at the balanced
  optimum: the typed advantage is type-specific, not universal (which is
  precisely the paper's "type-specific properties of the data" point).
"""

from conftest import report

from repro.dependency import known
from repro.dependency.relation import DependencyRelation, SchemaPair
from repro.dependency.static_dep import minimal_static_dependency
from repro.quorum.search import best_threshold_assignment
from repro.spec.enumerate import event_alphabet
from repro.types import PROM, Queue


def _read_write_relation(datatype, reads, writes, depth=4):
    """The Gifford-style constraints as a dependency relation."""
    schemas = []
    for read in reads:
        for write in writes:
            schemas.append(SchemaPair(read, write, None))   # r ∩ w
    for first in writes:
        for second in writes:
            schemas.append(SchemaPair(first, second, None))  # w ∩ w
    events = event_alphabet(datatype, depth)
    return DependencyRelation.from_schemas(
        schemas, datatype.invocations(), events
    )


def test_ablation_prom(benchmark):
    prom = PROM()
    typed = known.ground(prom, known.PROM_HYBRID, 5)
    rw = _read_write_relation(prom, reads=("Read",), writes=("Write", "Seal"))
    operations = ("Read", "Seal", "Write")
    weights = {"Read": 4.0, "Write": 4.0, "Seal": 0.2}
    n_sites, p_up = 5, 0.9

    def run():
        return (
            best_threshold_assignment(typed, n_sites, operations, p_up, weights),
            best_threshold_assignment(rw, n_sites, operations, p_up, weights),
        )

    (typed_choice, typed_score), (rw_choice, rw_score) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert typed_score > rw_score
    lines = [
        "PROM, n = 5, p = 0.9, read/write-heavy workload (4:4:0.2):",
        "",
        f"typed (hybrid) quorum assignment (score {typed_score:.4f}):",
        f"  {typed_choice.describe()}",
        f"read/write classification        (score {rw_score:.4f}):",
        f"  {rw_choice.describe()}",
        "",
        f"typed advantage: {typed_score - rw_score:+.4f} weighted availability",
        "",
        "The r/w view forces Write quorums to intersect each other and all",
        "Reads; the typed hybrid relation lets Writes run at single sites.",
    ]
    report("ablation_prom", "\n".join(lines))


def test_ablation_queue(benchmark):
    queue = Queue()
    typed = minimal_static_dependency(queue, 4)
    rw = _read_write_relation(queue, reads=(), writes=("Enq", "Deq"))
    weights = {"Enq": 8.0, "Deq": 1.0}

    def run():
        return (
            best_threshold_assignment(typed, 5, ("Deq", "Enq"), 0.9, weights),
            best_threshold_assignment(rw, 5, ("Deq", "Enq"), 0.9, weights),
        )

    (typed_choice, typed_score), (rw_choice, rw_score) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Typed can never lose, but the FIFO discipline couples Enq and Deq
    # tightly enough that it does not win either: parity is the honest
    # result for this type.
    assert typed_score >= rw_score
    lines = [
        "Queue, n = 5, p = 0.9, enqueue-heavy workload (8:1):",
        "(both Enq and Deq are read-modify-write under the r/w view)",
        "",
        f"typed quorum assignment   (score {typed_score:.4f}):",
        f"  {typed_choice.describe()}",
        f"read/write classification (score {rw_score:.4f}):",
        f"  {rw_choice.describe()}",
        "",
        f"typed advantage: {typed_score - rw_score:+.4f}",
        "",
        "The typed advantage is type-specific: the Queue's FIFO coupling",
        "yields parity, while the PROM's write-before-seal structure yields",
        "single-site Writes (see ablation_prom).",
    ]
    report("ablation_queue", "\n".join(lines))
