"""Kernel compute-layer benchmark: cold derive vs warm cache vs fan-out.

Three measurements over the same ``(type, bound)`` plan, asserting the
compute layer's two core claims:

* **warm ≥ 3× cold** — loading a cached artifact must beat re-deriving
  it by at least 3× (in practice it is orders of magnitude);
* **byte-identical artifacts** — the canonical JSON of every artifact
  must be identical across the cold, warm, and parallel paths; the
  cache and the process fan-out are pure performance layers.

The parallel measurement (``PARALLEL_JOBS`` workers, one type per
process) additionally asserts **≥ 1.5× over serial** — but only when
the machine can actually run two processes at once
(``available_cpus() >= 2``) and the pool really engaged; on a
single-CPU container the numbers are still recorded, honestly, in
``benchmarks/results/BENCH_kernel_compute.json``.

Standalone: ``python benchmarks/bench_kernel_compute.py [--quick]``
runs the same measurements against a private temporary cache (CI's
smoke job uses ``--quick``).
"""

from __future__ import annotations

from time import perf_counter

from conftest import emit_json, report

from repro.compute.artifacts import (
    _catalog_worker,
    artifacts_for,
    clear_memory_cache,
)
from repro.compute.obs import kernel_metrics
from repro.compute.parallel import available_cpus, parallel_map
from repro.types import PROM, Account, Bag, DoubleBuffer, FlagSet, Queue

#: The measured plan: the bound-4 derivations the theorem battery uses
#: plus the costliest bound-3 catalog types.
PLAN = (
    (Queue(), 4),
    (PROM(), 4),
    (FlagSet(), 3),
    (Account(), 3),
    (Bag(), 3),
)

#: Trimmed plan for CI smoke runs (seconds, not tens of seconds).
QUICK_PLAN = (
    (Queue(), 3),
    (PROM(), 3),
    (DoubleBuffer(), 3),
)

PARALLEL_JOBS = 4
WARM_SPEEDUP_FLOOR = 3.0
PARALLEL_SPEEDUP_FLOOR = 1.5


def _measure(plan) -> dict:
    """Cold/warm/parallel timings plus byte-identity evidence."""
    # Cold: force real derivations (refresh bypasses any prior cache
    # state), serially; this also stores every artifact.
    clear_memory_cache()
    started = perf_counter()
    cold_texts = [
        artifacts_for(datatype, bound, refresh=True).canonical_text()
        for datatype, bound in plan
    ]
    cold_seconds = perf_counter() - started

    # Warm: drop the in-process memo so every artifact is a disk load.
    clear_memory_cache()
    hits_before = kernel_metrics().counter("kernel.cache.hit").value
    started = perf_counter()
    warm_texts = [
        artifacts_for(datatype, bound).canonical_text()
        for datatype, bound in plan
    ]
    warm_seconds = perf_counter() - started
    hits = kernel_metrics().counter("kernel.cache.hit").value - hits_before

    # Parallel: real derivations again, one worker per type.
    clear_memory_cache()
    started = perf_counter()
    payloads, parallel_used = parallel_map(
        _catalog_worker,
        [(datatype, bound, True) for datatype, bound in plan],
        PARALLEL_JOBS,
    )
    parallel_seconds = perf_counter() - started
    from repro.compute.artifacts import TypeArtifacts

    parallel_texts = [
        TypeArtifacts.from_payload(payload).canonical_text()
        for payload in payloads
    ]

    return {
        "plan": [
            {"type": datatype.name, "bound": bound} for datatype, bound in plan
        ],
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "parallel_speedup": (
            cold_seconds / parallel_seconds if parallel_seconds else float("inf")
        ),
        "warm_cache_hits": hits,
        "parallel_used": parallel_used,
        "parallel_jobs": PARALLEL_JOBS,
        "cpus": available_cpus(),
        "byte_identical_warm": warm_texts == cold_texts,
        "byte_identical_parallel": parallel_texts == cold_texts,
    }


def _render(results: dict) -> str:
    plan_text = ", ".join(
        "{}@{}".format(p["type"], p["bound"]) for p in results["plan"]
    )
    lines = [
        f"plan: {plan_text}",
        f"cold derive (serial):   {results['cold_seconds']:>8.3f}s",
        f"warm cache load:        {results['warm_seconds']:>8.3f}s "
        f"({results['warm_speedup']:,.0f}x, "
        f"{results['warm_cache_hits']} hits)",
        f"parallel derive (x{results['parallel_jobs']}):  "
        f"{results['parallel_seconds']:>8.3f}s "
        f"({results['parallel_speedup']:.2f}x, "
        f"{'pool' if results['parallel_used'] else 'serial fallback'}, "
        f"{results['cpus']} cpu(s))",
        f"artifacts byte-identical across paths: "
        f"{results['byte_identical_warm'] and results['byte_identical_parallel']}",
    ]
    return "\n".join(lines)


def _check(results: dict) -> None:
    assert results["byte_identical_warm"], "warm artifacts differ from cold"
    assert results["byte_identical_parallel"], (
        "parallel artifacts differ from cold"
    )
    assert results["warm_cache_hits"] == len(results["plan"]), (
        "warm pass was not served entirely from the persistent cache"
    )
    assert results["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm speedup {results['warm_speedup']:.1f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x floor"
    )
    if results["cpus"] >= 2 and results["parallel_used"]:
        assert results["parallel_speedup"] >= PARALLEL_SPEEDUP_FLOOR, (
            f"parallel speedup {results['parallel_speedup']:.2f}x below the "
            f"{PARALLEL_SPEEDUP_FLOOR}x floor on a {results['cpus']}-cpu host"
        )


def test_kernel_compute_cache_and_fanout(bench_cache_state):
    results = _measure(PLAN)
    emit_json("kernel_compute", results, cache_state=bench_cache_state)
    report("kernel_compute", _render(results))
    _check(results)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the trimmed CI plan"
    )
    args = parser.parse_args(argv)
    # A private cache keeps the standalone run hermetic.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-bench-")
    results = _measure(QUICK_PLAN if args.quick else PLAN)
    emit_json("kernel_compute", results, cache_state="cold")
    report("kernel_compute", _render(results))
    _check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
