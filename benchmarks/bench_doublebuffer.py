"""The DoubleBuffer example (Theorem 12): dynamic ⇏ hybrid.

Regenerates the paper's final separation: the minimal dynamic dependency
relation for DoubleBuffer (five schema pairs, found by the Theorem 10
commutativity search) is *not* a hybrid dependency relation — both the
paper's explicit five-action counterexample and an independently
searched one refute it under Definition 2.
"""

from conftest import report

from repro.atomicity.explore import ExplorationBounds
from repro.atomicity.properties import DynamicAtomicity, HybridAtomicity
from repro.dependency import known
from repro.dependency.dynamic_dep import minimal_dynamic_dependency
from repro.dependency.verify import (
    VerificationArena,
    VerificationBounds,
    find_counterexample,
)
from repro.histories.events import event, ok
from repro.spec.legality import LegalityOracle
from repro.types import DoubleBuffer

EVENTS = (
    event("Produce", ("x",)),
    event("Produce", ("y",)),
    event("Transfer"),
    event("Consume", (), ok("x")),
    event("Consume", (), ok("0")),
)


def test_doublebuffer_dynamic_relation(benchmark):
    buffer = DoubleBuffer()
    oracle = LegalityOracle(buffer)
    relation = benchmark.pedantic(
        lambda: minimal_dynamic_dependency(buffer, 3, oracle),
        rounds=1,
        iterations=1,
    )
    assert relation == known.ground(buffer, known.DOUBLEBUFFER_DYNAMIC, 5, oracle)
    report(
        "doublebuffer_dynamic_relation",
        "Minimal dynamic dependency relation for DoubleBuffer (Theorem 10):\n"
        + relation.describe(),
    )


def test_doublebuffer_dynamic_not_hybrid(benchmark):
    buffer = DoubleBuffer()
    oracle = LegalityOracle(buffer)
    hybrid = HybridAtomicity(buffer, oracle)
    relation = known.ground(buffer, known.DOUBLEBUFFER_DYNAMIC, 5, oracle)

    # 1. The paper's witness, replayed verbatim.
    history, subhistory, appended = known.doublebuffer_theorem12_witness()
    assert hybrid.admits(history)
    assert hybrid.admits(subhistory.append(appended))
    assert not hybrid.admits(history.append(appended))

    # 2. An independent counterexample found by bounded search.
    def search():
        arena = VerificationArena(
            hybrid,
            VerificationBounds(
                ExplorationBounds(max_ops=4, max_actions=4, events=EVENTS)
            ),
        )
        return find_counterexample(relation, arena)

    counterexample = benchmark.pedantic(search, rounds=1, iterations=1)
    assert counterexample is not None

    # 3. Yet the same relation IS valid for its own property (small bound).
    dynamic_arena = VerificationArena(
        DynamicAtomicity(buffer, oracle),
        VerificationBounds(
            ExplorationBounds(max_ops=3, max_actions=3, events=EVENTS)
        ),
    )
    assert find_counterexample(relation, dynamic_arena) is None

    lines = [
        "Theorem 12: the minimal dynamic dependency relation for",
        "DoubleBuffer is not a hybrid dependency relation.",
        "",
        "paper's witness (H; G = H minus the last event; append "
        f"{appended.event} by {appended.action}):",
        str(history),
        "",
        "search-found counterexample:",
        counterexample.explain(),
        "",
        "same relation under Dynamic(DoubleBuffer): no counterexample "
        "(bounded check).",
    ]
    report("doublebuffer_thm12", "\n".join(lines))
