"""Log compaction: bounded storage with unchanged semantics.

Quorum-consensus logs grow with every operation; type-safe compaction
(fold committed events into a snapshot state, discard aborted garbage)
keeps per-repository storage bounded by the *active* working set rather
than history length.  The benchmark runs the same workload with and
without periodic compaction and reports log sizes over time; the
compacted run's histories still certify as hybrid atomic — against the
full, uncompacted execution record.
"""

from conftest import report

from repro.atomicity.properties import HybridAtomicity
from repro.dependency import known
from repro.replication.cluster import build_cluster
from repro.replication.snapshot import compact
from repro.sim.workload import OperationMix, WorkloadGenerator
from repro.spec.legality import LegalityOracle
from repro.types import Queue

BATCHES = 5
TRANSACTIONS_PER_BATCH = 20


def _run(compaction: bool, seed: int = 31):
    cluster = build_cluster(3, seed=seed)
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    obj = cluster.add_object("obj", queue, "hybrid", relation=relation)
    mix = OperationMix.uniform("obj", queue.invocations())
    generator = WorkloadGenerator(
        cluster.sim,
        cluster.tm,
        cluster.frontends,
        mix,
        ops_per_transaction=2,
        concurrency=3,
    )
    sizes = []
    for _batch in range(BATCHES):
        generator.run(TRANSACTIONS_PER_BATCH)
        if compaction:
            compact(cluster.network, cluster.repositories, obj, cluster.tm)
        sizes.append(max(r.entry_count("obj") for r in cluster.repositories))
    return cluster, obj, sizes


def test_log_compaction_bounds_storage(benchmark):
    def run_both():
        return _run(compaction=False), _run(compaction=True)

    (_c1, _obj_plain, plain_sizes), (_c2, obj_compacted, compacted_sizes) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    assert plain_sizes[-1] > 4 * max(1, compacted_sizes[-1])
    assert all(size <= 6 for size in compacted_sizes)

    checker = HybridAtomicity(Queue(), LegalityOracle(Queue()))
    assert checker.admits(obj_compacted.recorder.to_behavioral_history())

    lines = [
        f"Replicated Queue, {BATCHES} batches × {TRANSACTIONS_PER_BATCH} "
        "transactions, majority quorums:",
        "",
        f"{'batch':>6} {'no compaction':>14} {'with compaction':>16}",
    ]
    for index, (plain, compacted) in enumerate(zip(plain_sizes, compacted_sizes)):
        lines.append(f"{index:>6} {plain:>14} {compacted:>16}")
    lines.append("")
    lines.append(
        "(sizes are max per-repository log entries; the compacted run's "
        "residue is\nuncommitted in-flight entries only — and its full "
        "execution history still\ncertifies as hybrid atomic.)"
    )
    report("log_compaction", "\n".join(lines))
