"""The PROM quorum example (Section 4) — the paper's headline table.

"Consider a PROM replicated among n identical sites to maximize the
availability of the Read operation.  Hybrid atomicity permits Read, Seal
and Write quorums respectively consisting of any one, n, and one sites,
while static atomicity would require Read, Seal and Write quorums to
consist of any one, n, and n sites."

This benchmark regenerates that comparison as a table: for n ∈ {3,5,7}
and a sweep of per-site up-probabilities, the best Write availability
achievable while keeping Read at a single site, under each property's
minimal constraints — plus the full Pareto frontier at n = 5.
"""

from time import perf_counter

import pytest
from conftest import report

from repro.dependency import known
from repro.quorum.batch import threshold_frontier_sweep
from repro.quorum.search import threshold_frontier, valid_threshold_choices
from repro.types import PROM

OPS = ("Read", "Seal", "Write")


def _best_write_with_single_site_read(relation, n):
    """Smallest Write quorum size compatible with Read initial = 1."""
    best = None
    for choice in valid_threshold_choices(relation, n, OPS):
        if choice.initial_of("Read") != 1:
            continue
        write_size = max(choice.initial_of("Write"), choice.final_of("Write"))
        if best is None or write_size < best:
            best = write_size
    return best


@pytest.fixture(scope="module")
def relations():
    prom = PROM()
    return (
        known.ground(prom, known.PROM_HYBRID, 5),
        known.ground(prom, known.PROM_STATIC, 5),
    )


def test_prom_quorum_sizes_match_paper(relations, benchmark):
    hybrid, static = relations

    def table_rows():
        rows = []
        for n in (3, 5, 7):
            rows.append(
                (
                    n,
                    _best_write_with_single_site_read(hybrid, n),
                    _best_write_with_single_site_read(static, n),
                )
            )
        return rows

    rows = benchmark.pedantic(table_rows, rounds=1, iterations=1)
    lines = [
        "PROM replicated among n identical sites, Read availability maximized",
        "(smallest achievable Write quorum given single-site Read):",
        "",
        f"{'n':>3} {'hybrid Write quorum':>20} {'static Write quorum':>20}",
    ]
    for n, hybrid_write, static_write in rows:
        assert hybrid_write == 1, "hybrid permits Read/Seal/Write = 1/n/1"
        assert static_write == n, "static forces Read/Seal/Write = 1/n/n"
        lines.append(f"{n:>3} {hybrid_write:>20} {static_write:>20}")
    report("prom_quorum_sizes", "\n".join(lines))


def test_prom_availability_sweep(relations, benchmark):
    hybrid, static = relations
    n = 5
    probabilities = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)

    def best_write(frontier):
        best = 0.0
        for choice, vector in frontier:
            values = dict(vector)
            if choice.initial_of("Read") == 1:
                best = max(best, values["Write"])
        return best

    def sweep():
        # One valid-choice enumeration per relation for the whole grid,
        # instead of one per (relation, probability) point.
        hybrid_sweep = threshold_frontier_sweep(hybrid, n, OPS, probabilities)
        static_sweep = threshold_frontier_sweep(static, n, OPS, probabilities)
        return [
            (p, best_write(h_frontier), best_write(s_frontier))
            for (p, h_frontier), (_p, s_frontier) in zip(hybrid_sweep, static_sweep)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The batched sweep must be bit-identical to the scalar frontier at
    # every grid point — no tolerance: same floats, same Pareto set.
    started = perf_counter()
    scalar = [
        (p, threshold_frontier(hybrid, n, OPS, p), threshold_frontier(static, n, OPS, p))
        for p in probabilities
    ]
    scalar_seconds = perf_counter() - started
    started = perf_counter()
    batched = list(
        zip(
            probabilities,
            (f for _p, f in threshold_frontier_sweep(hybrid, n, OPS, probabilities)),
            (f for _p, f in threshold_frontier_sweep(static, n, OPS, probabilities)),
        )
    )
    batched_seconds = perf_counter() - started
    assert batched == scalar, "batched frontier sweep diverged from scalar"

    lines = [
        f"Write availability with single-site Reads, n = {n} sites:",
        "",
        f"{'p(site up)':>10} {'hybrid':>10} {'static':>10} {'ratio':>8}",
    ]
    for p, hybrid_av, static_av in rows:
        assert hybrid_av > static_av, "hybrid dominates static for Write"
        lines.append(
            f"{p:>10.2f} {hybrid_av:>10.4f} {static_av:>10.4f} "
            f"{hybrid_av / static_av:>8.2f}"
        )
    lines.append("")
    lines.append(
        f"sweep wall time: scalar {scalar_seconds:.4f}s, "
        f"batched {batched_seconds:.4f}s "
        f"({scalar_seconds / batched_seconds:.1f}x, bit-identical)"
        if batched_seconds
        else "sweep wall time: batched path below timer resolution"
    )
    report("prom_availability_sweep", "\n".join(lines))


def test_prom_pareto_frontiers(relations, benchmark):
    hybrid, static = relations
    n, p = 5, 0.9

    def frontiers():
        return (
            threshold_frontier(hybrid, n, OPS, p),
            threshold_frontier(static, n, OPS, p),
        )

    hybrid_frontier, static_frontier = benchmark.pedantic(
        frontiers, rounds=1, iterations=1
    )
    lines = [f"Pareto frontiers, n = {n}, p = {p}:", "", "HYBRID:"]
    for choice, vector in hybrid_frontier:
        values = ", ".join(f"{op}={av:.4f}" for op, av in vector)
        lines.append(f"  {choice.describe()}")
        lines.append(f"      availability: {values}")
    lines.append("")
    lines.append("STATIC:")
    for choice, vector in static_frontier:
        values = ", ".join(f"{op}={av:.4f}" for op, av in vector)
        lines.append(f"  {choice.describe()}")
        lines.append(f"      availability: {values}")
    report("prom_pareto_frontiers", "\n".join(lines))
