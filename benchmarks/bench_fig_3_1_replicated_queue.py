"""Figure 3-1 — a queue replicated among three repositories.

Runs the actual quorum-consensus system: transactions enqueue and
dequeue through front-ends; the per-repository logs are then rendered in
the layout of the paper's schematic, showing the partial replication of
log entries (each final quorum wrote a majority, not all, of the
repositories).  The run is traced, and the full span forest is written
to ``benchmarks/results/traces/`` as a JSONL artifact.
"""

import pathlib

from conftest import report

from repro.atomicity.properties import HybridAtomicity
from repro.core.report import figure_3_1
from repro.dependency import known
from repro.histories.events import Invocation
from repro.obs import Tracer, to_jsonl
from repro.replication.cluster import build_cluster
from repro.spec.legality import LegalityOracle
from repro.types import Queue

TRACES_DIR = pathlib.Path(__file__).parent / "results" / "traces"


def _run_queue_system():
    cluster = build_cluster(3, seed=17, tracer=Tracer())
    queue = Queue(items=("x", "y"))
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    obj = cluster.add_object("queue", queue, "hybrid", relation=relation)
    script = [
        ("Enq", ("x",)),
        ("Enq", ("y",)),
        ("Deq", ()),
        ("Enq", ("x",)),
        ("Deq", ()),
    ]
    for index, (op, args) in enumerate(script):
        frontend = cluster.frontends[index % 3]
        txn = cluster.tm.begin(frontend.site)
        frontend.execute(txn, "queue", Invocation(op, args))
        cluster.tm.commit(txn)
    return cluster, obj


def test_fig_3_1_replicated_queue(benchmark):
    cluster, obj = benchmark.pedantic(_run_queue_system, rounds=1, iterations=1)

    # Entries are partially replicated: every repository holds some but
    # (with majority final quorums started at different sites) the union
    # is strictly bigger than at least one fragment.
    counts = [repo.entry_count("queue") for repo in cluster.repositories]
    assert all(count > 0 for count in counts)
    merged = cluster.repositories[0].read_log("queue")
    for repo in cluster.repositories[1:]:
        merged = merged.merge(repo.read_log("queue"))
    assert len(merged) == 5
    assert min(counts) < 5

    history = obj.recorder.to_behavioral_history()
    checker = HybridAtomicity(obj.datatype, LegalityOracle(obj.datatype))
    assert checker.admits(history)

    spans = cluster.tracer.spans
    operations = [s for s in spans if s.kind == "operation"]
    assert len(operations) == 5 and all(s.outcome == "ok" for s in operations)
    TRACES_DIR.mkdir(parents=True, exist_ok=True)
    artifact = TRACES_DIR / "fig_3_1_replicated_queue.jsonl"
    artifact.write_text(to_jsonl(spans) + "\n")

    text = figure_3_1(list(cluster.repositories), "queue")
    text += "\n\nper-repository entry counts: " + ", ".join(map(str, counts))
    text += f"\ntrace: {len(spans)} spans -> results/traces/{artifact.name}"
    report("fig_3_1_replicated_queue", text)
