"""Weighted voting with heterogeneous sites (Gifford [11]).

The paper treats Gifford's weighted voting as a specially optimized
instance of quorum consensus.  This benchmark regenerates the insight
that motivates weights at all: with one highly reliable site among
flaky ones, the availability-optimal assignment concentrates votes on
the reliable site, strictly beating the best uniform-threshold
assignment — while identical sites make weights worthless.
"""

import pytest
from conftest import report

from repro.dependency.static_dep import minimal_static_dependency
from repro.quorum.availability import operation_availability
from repro.quorum.batch import AvailabilityBatch
from repro.quorum.search import valid_threshold_choices
from repro.quorum.voting_search import best_voting_assignment
from repro.types import Register

OPS = ("Read", "Write")


def _best_uniform(relation, p_vector):
    # One AvailabilityBatch shares the count-tail / up-set tables across
    # every candidate choice; each score is bit-identical to the scalar
    # operation_availability, which the spot assert pins inline.
    batch = AvailabilityBatch(len(p_vector), list(p_vector))
    best = 0.0
    for choice in valid_threshold_choices(relation, len(p_vector), OPS):
        assignment = choice.to_assignment()
        values = [batch.operation(assignment, op) for op in OPS]
        assert values[0] == operation_availability(
            assignment, OPS[0], list(p_vector)
        )
        score = sum(values) / len(OPS)
        best = max(best, score)
    return best


def test_weighted_voting_heterogeneous(benchmark):
    relation = minimal_static_dependency(Register(), 3)
    heterogeneous = (0.99, 0.6, 0.6)
    homogeneous = (0.8, 0.8, 0.8)

    def search():
        return (
            best_voting_assignment(relation, heterogeneous, OPS),
            best_voting_assignment(relation, homogeneous, OPS),
            _best_uniform(relation, heterogeneous),
            _best_uniform(relation, homogeneous),
        )

    (het_w, het_assignment, het_score), (hom_w, _hom_a, hom_score), het_uniform, hom_uniform = (
        benchmark.pedantic(search, rounds=1, iterations=1)
    )

    assert het_score > het_uniform          # weights win when sites differ
    assert hom_score == pytest.approx(hom_uniform, abs=1e-9)  # and not otherwise
    assert het_w[0] == max(het_w)           # the reliable site carries votes

    lines = [
        "Replicated Register, read/write workload, weighted voting vs",
        "uniform thresholds (availability = mean of Read and Write):",
        "",
        f"heterogeneous sites p = {heterogeneous}:",
        f"  best weighted voting: weights {het_w}, availability {het_score:.4f}",
        f"  best uniform threshold:                availability {het_uniform:.4f}",
        f"  advantage: {het_score - het_uniform:+.4f}",
        "",
        f"identical sites p = {homogeneous}:",
        f"  best weighted voting availability {hom_score:.4f}",
        f"  best uniform threshold            {hom_uniform:.4f}",
        "  advantage: none (weights cannot help identical sites)",
        "",
        "optimal heterogeneous assignment:",
        "  " + het_assignment.describe().replace("\n", "\n  "),
    ]
    report("weighted_voting", "\n".join(lines))

