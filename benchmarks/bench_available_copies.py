"""Related-work contrast (Section 2): available copies vs quorum consensus.

"Unlike quorum consensus methods, the available copies method does not
preserve serializability in the presence of communication link failures
such as partitions."

The same partitioned scenario runs under both methods:

* **available copies** — both sides of the partition keep executing;
  the same queue item is dequeued twice; the combined history is not
  serializable in any order;
* **quorum consensus** — the minority side becomes unavailable; the
  majority side proceeds; the history remains hybrid atomic.
"""

from conftest import report

from repro.atomicity.properties import (
    HybridAtomicity,
    is_serializable_in_some_order,
)
from repro.errors import UnavailableError
from repro.histories.events import Invocation, ok
from repro.replication.available_copies import AvailableCopiesObject
from repro.replication.cluster import build_cluster
from repro.dependency import known
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.trials import run_trials, seed_range
from repro.spec.legality import LegalityOracle
from repro.types import Queue

ENQ_X = Invocation("Enq", ("x",))
DEQ = Invocation("Deq")


def _run_available_copies():
    network = Network(Simulator(seed=0), 3)
    obj = AvailableCopiesObject("q", Queue(), network)
    obj.execute(0, ENQ_X)
    network.partition({0}, {1, 2})
    left = obj.execute(0, DEQ)
    right = obj.execute(1, DEQ)
    history = obj.to_behavioral_history()
    serializable = is_serializable_in_some_order(LegalityOracle(Queue()), history)
    return left, right, history, serializable


def _run_quorum_consensus(seed: int = 0):
    cluster = build_cluster(3, seed=seed)
    queue = Queue()
    relation = known.ground(queue, known.QUEUE_STATIC, 5)
    obj = cluster.add_object("q", queue, "hybrid", relation=relation)
    txn = cluster.tm.begin(0)
    cluster.frontends[0].execute(txn, "q", ENQ_X)
    cluster.tm.commit(txn)
    cluster.network.partition({0}, {1, 2})

    minority_outcome = "?"
    minority_txn = cluster.tm.begin(0)
    try:
        cluster.frontends[0].execute(minority_txn, "q", DEQ)
    except UnavailableError:
        minority_outcome = "UNAVAILABLE"
        cluster.tm.abort(minority_txn, "partitioned")

    majority_txn = cluster.tm.begin(1)
    majority_response = cluster.frontends[1].execute(majority_txn, "q", DEQ)
    cluster.tm.commit(majority_txn)

    history = obj.recorder.to_behavioral_history()
    admitted = HybridAtomicity(queue, LegalityOracle(queue)).admits(history)
    return minority_outcome, majority_response, admitted


def _quorum_partition_trial(seed: int) -> tuple:
    """One seeded partition scenario, compact and picklable for sharding."""
    minority_outcome, majority_response, admitted = _run_quorum_consensus(seed)
    return minority_outcome, str(majority_response), admitted


def test_available_copies_vs_quorum_consensus(benchmark, bench_jobs):
    def run_both():
        return _run_available_copies(), _run_quorum_consensus()

    (ac, qc) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    left, right, ac_history, ac_serializable = ac
    minority_outcome, majority_response, qc_admitted = qc

    assert left == ok("x") and right == ok("x")
    assert not ac_serializable
    assert minority_outcome == "UNAVAILABLE"
    assert majority_response == ok("x")
    assert qc_admitted

    # Safety is not a property of one lucky seed: sweep the partition
    # scenario across a seed range (sharded across --jobs processes when
    # asked) and require the same verdict from every trial.
    sweep, _ = run_trials(
        _quorum_partition_trial, seed_range(0, 6), jobs=bench_jobs
    )
    assert all(
        trial == ("UNAVAILABLE", str(ok("x")), True) for trial in sweep
    )

    lines = [
        "Scenario: Enq(x); partition {0} | {1,2}; both sides attempt Deq.",
        "",
        "AVAILABLE COPIES (read any available, write all available):",
        f"  minority side Deq -> {left}",
        f"  majority side Deq -> {right}",
        f"  combined history serializable in some order: {ac_serializable}",
        "  -> the single enqueued item was consumed twice.",
        "",
        "QUORUM CONSENSUS (majority initial/final quorums, hybrid CC):",
        f"  minority side Deq -> {minority_outcome}",
        f"  majority side Deq -> {majority_response}",
        f"  history hybrid atomic: {qc_admitted}",
        "  -> safety preserved; the partition costs availability instead.",
    ]
    report("available_copies_contrast", "\n".join(lines))
